// Fault injection & graceful degradation (DESIGN.md §10): NAND error
// model, FaultyDevice decorator, FTL bad-block management, SSD-cache
// circuit breaker, and the headline robustness property — injected
// faults change *latency and control flow only*, never query results.
#include <algorithm>
#include <cstring>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/cache/circuit_breaker.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/hybrid/cluster.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/ssd/ssd.hpp"
#include "src/storage/fault.hpp"
#include "src/storage/hdd.hpp"

namespace ssdse {
namespace {

NandConfig small_nand(std::uint32_t blocks = 64,
                      std::uint32_t pages_per_block = 16) {
  NandConfig cfg;
  cfg.num_blocks = blocks;
  cfg.pages_per_block = pages_per_block;
  return cfg;
}

// --- FaultyDevice ----------------------------------------------------------

TEST(FaultyDeviceTest, UnarmedPlanIsTransparent) {
  HddModel a;
  HddModel b;
  FaultyDevice faulty(b, FaultPlan{});  // all rates zero
  const IoResult plain = a.read(1'000, 64);
  const IoResult wrapped = faulty.read(1'000, 64);
  EXPECT_DOUBLE_EQ(plain.latency.value(), wrapped.latency.value());
  EXPECT_EQ(wrapped.status, IoStatus::kOk);
  EXPECT_EQ(faulty.fault_stats().read_uncs, 0u);
}

TEST(FaultyDeviceTest, CertainUncAddsPenaltyAndStatus) {
  HddModel a;
  HddModel b;
  FaultPlan plan;
  plan.read_unc_rate = 1.0;
  FaultyDevice faulty(b, plan);
  const IoResult plain = a.read(1'000, 64);
  const IoResult wrapped = faulty.read(1'000, 64);
  EXPECT_EQ(wrapped.status, IoStatus::kUncorrectable);
  EXPECT_GE(wrapped.latency, plain.latency + plan.unc_penalty);
  EXPECT_EQ(faulty.fault_stats().read_uncs, 1u);
}

TEST(FaultyDeviceTest, CertainWriteFailure) {
  HddModel inner;
  FaultPlan plan;
  plan.write_fail_rate = 1.0;
  FaultyDevice faulty(inner, plan);
  EXPECT_EQ(faulty.write(0, 64).status, IoStatus::kWriteFailed);
  EXPECT_EQ(faulty.fault_stats().write_fails, 1u);
}

// --- NAND error model ------------------------------------------------------

TEST(NandFaultTest, TransientRetriesCostExtraReads) {
  NandConfig cfg = small_nand();
  cfg.fault.read_transient_rate = 1.0;
  NandArray nand(cfg);
  (void)nand.program_page(0, 42);
  const auto reads0 = nand.stats().page_reads;
  std::uint64_t tag = 0;
  const IoResult io = nand.read_page_checked(0, &tag);
  EXPECT_EQ(tag, 42u);  // retried reads still deliver the data
  EXPECT_EQ(io.status, IoStatus::kRetried);
  EXPECT_GE(io.retries, 1u);
  EXPECT_EQ(nand.stats().page_reads, reads0 + 1 + io.retries);
  EXPECT_GT(io.latency, cfg.page_read);  // ladder re-reads add latency
}

TEST(NandFaultTest, ZeroRatesDrawNothingAndStayOk) {
  NandArray nand(small_nand());
  (void)nand.program_page(0, 7);
  const IoResult io = nand.read_page_checked(0);
  EXPECT_EQ(io.status, IoStatus::kOk);
  EXPECT_EQ(io.retries, 0u);
  EXPECT_DOUBLE_EQ(io.latency.value(), nand.config().page_read.value());
}

// --- FTL bad-block management ---------------------------------------------

TEST(BadBlockTest, RemapOnProgramFailurePreservesData) {
  NandConfig cfg = small_nand(128, 16);
  cfg.fault.program_fail_rate = 0.002;
  NandArray nand(cfg);
  FtlConfig fcfg;
  // Generous spare pool: every grown bad block permanently shrinks it,
  // so the spares must outlast the expected ~20 failures of this run.
  fcfg.over_provisioning = 0.4;
  PageFtl ftl(nand, fcfg);
  Rng rng(321);
  const Lpn n = ftl.logical_pages();
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
  }
  const FtlStats& st = ftl.stats();
  // Each failure retires the active block, remaps the write, and grows
  // exactly one bad block.
  EXPECT_GT(st.program_failures, 0u);
  EXPECT_EQ(st.program_failures, st.remapped_writes);
  EXPECT_EQ(st.program_failures, st.grown_bad_blocks);
  // Every logical page written is still readable with the right tag
  // (read verifies tags internally; a lost remap would throw).
  for (Lpn p = 0; p < n; ++p) {
    EXPECT_TRUE(ftl.read(p).ok());
  }
}

TEST(BadBlockTest, SparePoolExhaustionSurfacesWriteFailed) {
  NandConfig cfg = small_nand(32, 8);
  cfg.fault.program_fail_rate = 1.0;  // every host program fails
  NandArray nand(cfg);
  PageFtl ftl(nand);
  // One write chews through the entire spare pool (each failure retires
  // the active block) and must then fail cleanly instead of throwing.
  const IoResult io = ftl.write(0);
  EXPECT_EQ(io.status, IoStatus::kWriteFailed);
  EXPECT_FALSE(io.ok());
  EXPECT_GT(io.latency.value(), 0.0);
  EXPECT_GT(ftl.stats().grown_bad_blocks, 0u);
  // The failed page reads back as unmapped (the data never reached
  // flash) rather than tripping the tag verifier.
  EXPECT_TRUE(ftl.read(0).ok());
  // The device stays alive: later writes keep failing cleanly too.
  for (Lpn p = 1; p < 4; ++p) {
    EXPECT_EQ(ftl.write(p).status, IoStatus::kWriteFailed);
  }
}

TEST(BadBlockTest, SparePoolExhaustionPropagatesThroughRuns) {
  NandConfig cfg = small_nand(32, 8);
  cfg.fault.program_fail_rate = 1.0;
  NandArray nand(cfg);
  PageFtl ftl(nand);
  // A run merges statuses to the most severe: any failed page in the
  // run must surface on the aggregate result.
  EXPECT_EQ(ftl.write_run(0, 4).status, IoStatus::kWriteFailed);
}

TEST(BadBlockTest, SchemesWithoutBbmRejectProgramFaults) {
  SsdConfig cfg;
  cfg.nand = small_nand();
  cfg.nand.fault.program_fail_rate = 0.01;
  cfg.ftl_scheme = "block";
  EXPECT_THROW(Ssd{cfg}, std::invalid_argument);
  cfg.ftl_scheme = "page";  // page mapping has BBM
  EXPECT_NO_THROW(Ssd{cfg});
}

// --- Circuit breaker -------------------------------------------------------

CircuitBreakerConfig small_breaker() {
  CircuitBreakerConfig cfg;
  cfg.window = 8;
  cfg.threshold = 0.5;
  cfg.min_samples = 4;
  cfg.cooldown_ops = 4;
  cfg.probes = 2;
  return cfg;
}

TEST(CircuitBreakerTest, TripsHalfOpensAndRecloses) {
  CircuitBreaker br(small_breaker());
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 4; ++i) br.record(false);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.stats().trips, 1u);
  // While open, operations are refused until the cooldown elapses.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(br.allow());
  EXPECT_FALSE(br.allow());  // 4th bypass -> half-open for the *next* op
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(br.allow());
  // Two successful probes re-close.
  br.record(true);
  br.record(true);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(br.stats().closes, 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreaker br(small_breaker());
  for (int i = 0; i < 4; ++i) br.record(false);
  for (int i = 0; i < 4; ++i) br.allow();  // cooldown -> half-open
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  br.record(false);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.stats().reopens, 1u);
}

TEST(CircuitBreakerTest, HalfOpenReTripRestartsProbeBudget) {
  CircuitBreaker br(small_breaker());  // probes = 2, cooldown = 4
  for (int i = 0; i < 4; ++i) br.record(false);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(br.allow());  // -> half-open
  ASSERT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  // One successful probe, then a failure: re-trip, and the partial
  // probe credit must not survive into the next half-open round.
  br.record(true);
  br.record(false);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.stats().reopens, 1u);
  // The cooldown restarts from zero after a re-trip.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(br.allow());
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.allow());
  ASSERT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  // A single success is not enough to close: the budget restarted.
  br.record(true);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  br.record(true);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(br.stats().closes, 1u);
}

TEST(IoStatusTest, SeverityMergeIsAssociativeAndCommutative) {
  const IoStatus all[] = {IoStatus::kOk, IoStatus::kRetried,
                          IoStatus::kUncorrectable, IoStatus::kWriteFailed};
  for (const IoStatus a : all) {
    for (const IoStatus b : all) {
      // Commutativity of the severity merge.
      IoResult ab{micros(1.0), a, 1};
      ab += IoResult{micros(2.0), b, 2};
      IoResult ba{micros(2.0), b, 2};
      ba += IoResult{micros(1.0), a, 1};
      EXPECT_EQ(ab.status, ba.status);
      EXPECT_DOUBLE_EQ(ab.latency.value(), ba.latency.value());
      EXPECT_EQ(ab.retries, ba.retries);
      for (const IoStatus c : all) {
        // Associativity: (a + b) + c == a + (b + c).
        IoResult left{micros(1.0), a, 1};
        left += IoResult{micros(2.0), b, 2};
        left += IoResult{micros(4.0), c, 4};
        IoResult bc{micros(2.0), b, 2};
        bc += IoResult{micros(4.0), c, 4};
        IoResult right{micros(1.0), a, 1};
        right += bc;
        EXPECT_EQ(left.status, right.status);
        EXPECT_DOUBLE_EQ(left.latency.value(), right.latency.value());
        EXPECT_EQ(left.retries, right.retries);
        // The merged status is exactly the max severity of the inputs.
        const IoStatus expect = std::max(std::max(a, b), c);
        EXPECT_EQ(left.status, expect);
      }
    }
  }
}

TEST(CircuitBreakerTest, InertWithoutErrors) {
  CircuitBreaker br;  // default config
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(br.allow());
    br.record(true);
  }
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(br.stats().trips, 0u);
}

// --- System-level degradation ---------------------------------------------

SystemConfig small_system(CachePolicy policy = CachePolicy::kCblru) {
  SystemConfig cfg;
  cfg.set_num_docs(400'000);
  cfg.set_memory_budget(2 * MiB);
  cfg.cache.policy = policy;
  cfg.training_queries = 500;
  return cfg;
}

/// Order-sensitive checksum over every query's result (doc ids +
/// score bits): identical iff the result stream is bit-identical.
std::uint64_t result_fingerprint(SearchSystem& sys, std::uint64_t queries) {
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto out = sys.execute(sys.generator().next());
    for (const ScoredDoc& d : out.result.docs) {
      std::uint32_t bits;
      std::memcpy(&bits, &d.score, sizeof bits);
      checksum = checksum * 1099511628211ull + d.doc.raw() + bits;
    }
  }
  return checksum;
}

// The headline robustness property: injected faults degrade latency and
// hit ratios but never change what a query returns — the failed-read
// path is result-equivalent to a cache miss.
TEST(FaultEquivalenceTest, SsdFaultsNeverChangeResults) {
  const std::uint64_t kQueries = 3'000;
  SearchSystem clean(small_system());
  const std::uint64_t baseline = result_fingerprint(clean, kQueries);

  SystemConfig faulty_cfg = small_system();
  faulty_cfg.cache_ssd.nand.fault.read_unc_rate = 0.05;
  faulty_cfg.cache_ssd.nand.fault.read_transient_rate = 0.10;
  faulty_cfg.cache_ssd.nand.fault.program_fail_rate = 0.001;
  SearchSystem faulty(faulty_cfg);
  EXPECT_EQ(result_fingerprint(faulty, kQueries), baseline);
  // The faults really happened.
  const FtlStats& fs = faulty.cache_ssd()->ftl().stats();
  EXPECT_GT(fs.uncorrectable_reads + fs.read_retries, 0u);
  EXPECT_GT(faulty.cache_manager().stats().ssd_read_errors, 0u);
}

TEST(FaultEquivalenceTest, HddFaultsNeverChangeResults) {
  const std::uint64_t kQueries = 2'000;
  SearchSystem clean(small_system());
  const std::uint64_t baseline = result_fingerprint(clean, kQueries);

  SystemConfig faulty_cfg = small_system();
  faulty_cfg.hdd_faults.read_unc_rate = 0.02;
  faulty_cfg.hdd_faults.read_transient_rate = 0.05;
  faulty_cfg.hdd_faults.latency_spike_rate = 0.01;
  SearchSystem faulty(faulty_cfg);
  EXPECT_EQ(result_fingerprint(faulty, kQueries), baseline);
  ASSERT_NE(faulty.faulty_hdd(), nullptr);
  EXPECT_GT(faulty.faulty_hdd()->fault_stats().read_uncs, 0u);
  EXPECT_GT(faulty.cache_manager().stats().hdd_read_errors, 0u);
}

TEST(FaultEquivalenceTest, LruBaselineAlsoUnchanged) {
  const std::uint64_t kQueries = 2'000;
  SearchSystem clean(small_system(CachePolicy::kLru));
  const std::uint64_t baseline = result_fingerprint(clean, kQueries);

  SystemConfig faulty_cfg = small_system(CachePolicy::kLru);
  faulty_cfg.cache_ssd.nand.fault.read_unc_rate = 0.05;
  SearchSystem faulty(faulty_cfg);
  EXPECT_EQ(result_fingerprint(faulty, kQueries), baseline);
}

TEST(DegradationTest, BreakerTripsUnderSustainedSsdErrors) {
  SystemConfig cfg = small_system();
  cfg.cache_ssd.nand.fault.read_unc_rate = 1.0;  // every flash read fails
  cfg.cache.breaker.window = 32;
  cfg.cache.breaker.min_samples = 8;
  cfg.cache.breaker.cooldown_ops = 64;
  SearchSystem sys(cfg);
  sys.run(4'000);
  const CacheManager& cm = sys.cache_manager();
  EXPECT_GT(cm.breaker().stats().trips, 0u);
  EXPECT_GT(cm.stats().breaker_bypassed_probes, 0u);
  EXPECT_GT(cm.stats().ssd_read_errors, 0u);
  // With a 100 % error rate every half-open probe fails too.
  EXPECT_GT(cm.breaker().stats().reopens, 0u);
  EXPECT_EQ(cm.breaker().stats().closes, 0u);
}

// --- Cluster deadlines -----------------------------------------------------

ClusterConfig small_cluster(std::uint32_t shards) {
  ClusterConfig cfg;
  cfg.num_shards = shards;
  cfg.total_docs = 200'000;
  cfg.shard_template.set_memory_budget(2 * MiB);
  cfg.shard_template.training_queries = 200;
  return cfg;
}

TEST(ShardDeadlineTest, NoDeadlineIncludesEveryShard) {
  SearchCluster cluster(small_cluster(2));
  const auto out = cluster.execute(cluster.generator().next());
  EXPECT_EQ(out.shards_included, 2u);
  EXPECT_EQ(out.shards_dropped, 0u);
  EXPECT_DOUBLE_EQ(out.coverage, 1.0);
}

TEST(ShardDeadlineTest, ImpossibleDeadlineDropsAllShards) {
  ClusterConfig cfg = small_cluster(2);
  cfg.shard_deadline = micros(0.001);  // far below any shard's service time
  SearchCluster cluster(cfg);
  const auto out = cluster.execute(cluster.generator().next());
  EXPECT_EQ(out.shards_included, 0u);
  EXPECT_EQ(out.shards_dropped, 2u);
  EXPECT_DOUBLE_EQ(out.coverage, 0.0);
  EXPECT_TRUE(out.result.docs.empty());
  // Broker stops waiting at the deadline: rtt only, no merge CPU.
  EXPECT_DOUBLE_EQ(out.response.value(),
                   (cfg.shard_deadline + cfg.network_rtt).value());
}

TEST(ShardDeadlineTest, PartialCoverageKeepsFastShards) {
  ClusterConfig cfg = small_cluster(2);
  SearchCluster probe(cfg);
  // Find a deadline between the two shards' service times for a query
  // where they differ; then a fresh cluster must drop exactly the slow
  // one at that deadline.
  Query q = probe.generator().next();
  auto r0 = probe.shard(0).execute(q);
  auto r1 = probe.shard(1).execute(q);
  if (r0.response == r1.response) GTEST_SKIP() << "shards tied";
  const Micros lo = std::min(r0.response, r1.response);
  const Micros hi = std::max(r0.response, r1.response);
  cfg.shard_deadline = (lo + hi) / 2;
  SearchCluster cluster(cfg);
  const auto out = cluster.execute(cluster.generator().next());
  EXPECT_EQ(out.shards_included, 1u);
  EXPECT_EQ(out.shards_dropped, 1u);
  EXPECT_DOUBLE_EQ(out.coverage, 0.5);
  EXPECT_FALSE(out.result.docs.empty());
  EXPECT_DOUBLE_EQ(out.response.value(),
                   (cfg.shard_deadline + cfg.network_rtt +
                    cfg.merge_cpu_per_shard).value());
}

}  // namespace
}  // namespace ssdse
