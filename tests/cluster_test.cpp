// SearchCluster (sharded scale-out) tests.
#include <gtest/gtest.h>

#include "src/hybrid/cluster.hpp"

namespace ssdse {
namespace {

ClusterConfig small_cluster(std::uint32_t shards) {
  ClusterConfig cfg;
  cfg.num_shards = shards;
  cfg.total_docs = 400'000;
  cfg.shard_template.set_memory_budget(4 * MiB);
  cfg.shard_template.training_queries = 500;
  return cfg;
}

TEST(ClusterTest, RejectsZeroShards) {
  EXPECT_THROW(SearchCluster(small_cluster(0)), std::invalid_argument);
}

TEST(ClusterTest, MergesGlobalTopK) {
  SearchCluster cluster(small_cluster(4));
  const auto out = cluster.execute(cluster.generator().next());
  EXPECT_LE(out.result.docs.size(), kTopK);
  EXPECT_FALSE(out.result.docs.empty());
  // Scores descending after the broker merge.
  for (std::size_t i = 1; i < out.result.docs.size(); ++i) {
    EXPECT_GE(out.result.docs[i - 1].score, out.result.docs[i].score);
  }
}

TEST(ClusterTest, GlobalDocIdsDisjointAcrossShards) {
  SearchCluster cluster(small_cluster(4));
  const auto out = cluster.execute(cluster.generator().next());
  // Global ids are shard-striped: id % shards recovers the shard.
  for (const ScoredDoc& d : out.result.docs) {
    EXPECT_LT(d.doc.raw() % 4, 4u);
    EXPECT_LT(d.doc.raw() / 4, 100'000u);  // shard-local space
  }
}

TEST(ClusterTest, ResponseIncludesNetworkAndMerge) {
  ClusterConfig cfg = small_cluster(2);
  cfg.network_rtt = micros(10'000);  // exaggerate to make it visible
  SearchCluster cluster(cfg);
  const auto out = cluster.execute(cluster.generator().next());
  EXPECT_GE(out.response, out.slowest_shard + micros(10'000));
}

TEST(ClusterTest, MoreShardsLowerShardLatency) {
  // Same corpus split across more shards -> smaller per-shard indexes
  // -> faster slowest-shard time (statistically; averaged over a run).
  auto mean_response = [](std::uint32_t shards) {
    SearchCluster cluster(small_cluster(shards));
    cluster.run(600);
    return cluster.metrics().mean_response();
  };
  EXPECT_LT(mean_response(8), mean_response(1) + micros(1'000) /*rtt+merge slack*/);
}

TEST(ClusterTest, RunAccumulatesMetricsAndThroughput) {
  SearchCluster cluster(small_cluster(3));
  cluster.run(500);
  EXPECT_EQ(cluster.metrics().queries(), 500u);
  EXPECT_GT(cluster.throughput_qps(), 0.0);
  // Every shard saw the broadcast.
  for (std::uint32_t s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.shard(s).metrics().queries(), 500u);
  }
}

TEST(ClusterTest, ParallelRunMatchesSequential) {
  SearchCluster a(small_cluster(3));
  SearchCluster b(small_cluster(3));
  a.run(400);
  b.run_parallel(400);
  EXPECT_EQ(a.metrics().queries(), b.metrics().queries());
  EXPECT_DOUBLE_EQ(a.metrics().mean_response().value(), b.metrics().mean_response().value());
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    const auto s = static_cast<Situation>(i);
    EXPECT_EQ(a.metrics().situation_count(s), b.metrics().situation_count(s))
        << to_string(s);
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(a.shard(s).cache_manager().stats().hit_ratio(),
                     b.shard(s).cache_manager().stats().hit_ratio());
  }
}

TEST(ClusterTest, BroadcastHitsAllShardCaches) {
  SearchCluster cluster(small_cluster(2));
  const Query q = cluster.generator().query_for_rank(0);
  cluster.execute(q);
  const auto again = cluster.execute(q);
  // Both shards answer repeats from their result caches.
  EXPECT_LE(again.slowest_shard, ms(1));
}

}  // namespace
}  // namespace ssdse
