// Parallel-broker stress coverage: many shards x many queries x shard
// deadlines, asserting run_parallel() stays bit-identical to run() and
// giving TSan a workload with real thread churn (the CI thread-sanitizer
// leg runs this binary; see .github/workflows/ci.yml).
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/hybrid/cluster.hpp"

namespace ssdse {
namespace {

ClusterConfig stress_cluster(std::uint32_t shards,
                             Micros deadline = Micros{}) {
  ClusterConfig cfg;
  cfg.num_shards = shards;
  cfg.total_docs = 400'000;
  cfg.shard_template.set_memory_budget(4 * MiB);
  cfg.shard_template.training_queries = 500;
  cfg.shard_deadline = deadline;
  return cfg;
}

/// A deadline that provably drops some-but-not-all shard replies:
/// the median slowest-shard time over a short calibration run. The
/// simulation is deterministic, so the calibrated value is stable.
Micros calibrated_deadline(std::uint32_t shards) {
  SearchCluster probe(stress_cluster(shards));
  std::vector<Micros> slowest;
  for (int i = 0; i < 60; ++i) {
    slowest.push_back(probe.execute(probe.generator().next()).slowest_shard);
  }
  std::nth_element(slowest.begin(), slowest.begin() + slowest.size() / 2,
                   slowest.end());
  return slowest[slowest.size() / 2];
}

/// Fold the full merged telemetry of both clusters and require exact
/// agreement metric-by-metric. Wall-clock gauges (host build times) are
/// the one legitimate difference between two otherwise identical runs.
void expect_identical_telemetry(const SearchCluster& a,
                                const SearchCluster& b) {
  const auto sa = a.telemetry_snapshot();
  const auto sb = b.telemetry_snapshot();
  ASSERT_EQ(sa.metrics().size(), sb.metrics().size());
  for (std::size_t i = 0; i < sa.metrics().size(); ++i) {
    const auto& ma = sa.metrics()[i];
    const auto& mb = sb.metrics()[i];
    ASSERT_EQ(ma.name, mb.name);
    ASSERT_EQ(ma.kind, mb.kind);
    if (ma.name.find("build_ms") != std::string::npos) continue;
    switch (ma.kind) {
      case telemetry::MetricKind::kCounter:
        EXPECT_EQ(ma.counter, mb.counter) << ma.name;
        break;
      case telemetry::MetricKind::kGauge:
        EXPECT_EQ(ma.gauge.count(), mb.gauge.count()) << ma.name;
        EXPECT_DOUBLE_EQ(ma.gauge.sum(), mb.gauge.sum()) << ma.name;
        break;
      case telemetry::MetricKind::kHistogram:
        EXPECT_EQ(ma.hist.count(), mb.hist.count()) << ma.name;
        EXPECT_DOUBLE_EQ(ma.hist.mean(), mb.hist.mean()) << ma.name;
        break;
    }
  }
}

void expect_identical_runs(const SearchCluster& a, const SearchCluster& b) {
  ASSERT_EQ(a.metrics().queries(), b.metrics().queries());
  EXPECT_DOUBLE_EQ(a.metrics().mean_response().value(), b.metrics().mean_response().value());
  EXPECT_DOUBLE_EQ(a.metrics().total_response_time().value(),
                   b.metrics().total_response_time().value());
  EXPECT_DOUBLE_EQ(a.metrics().request_coverage(),
                   b.metrics().request_coverage());
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    const auto s = static_cast<Situation>(i);
    EXPECT_EQ(a.metrics().situation_count(s), b.metrics().situation_count(s))
        << to_string(s);
  }
  const auto broker_a = a.broker_registry().snapshot();
  const auto broker_b = b.broker_registry().snapshot();
  const auto* da = broker_a.find("cluster.shards.dropped");
  const auto* db = broker_b.find("cluster.shards.dropped");
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(da->counter, db->counter);
  expect_identical_telemetry(a, b);
}

// The headline contract: with deadlines dropping roughly half the shard
// replies, the parallel broker still produces exactly the sequential
// result — responses, situation census, drop counters, and the merged
// telemetry of every shard.
TEST(ParallelStressTest, DeadlineRunMatchesSequentialExactly) {
  const Micros deadline = calibrated_deadline(8);
  ASSERT_GT(deadline.value(), 0.0);
  SearchCluster seq(stress_cluster(8, deadline));
  SearchCluster par(stress_cluster(8, deadline));
  seq.run(1200);
  par.run_parallel(1200);
  expect_identical_runs(seq, par);

  // The calibrated deadline must actually have bitten: queries ran with
  // partial coverage on both paths.
  const auto broker = par.broker_registry().snapshot();
  const auto* dropped = broker.find("cluster.shards.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->counter, 0u);
}

// Two parallel runs of the same config are bit-identical to each other:
// the parallel path itself introduces no scheduling-dependent state.
TEST(ParallelStressTest, ParallelRunIsSelfDeterministic) {
  const Micros deadline = calibrated_deadline(4);
  SearchCluster a(stress_cluster(4, deadline));
  SearchCluster b(stress_cluster(4, deadline));
  a.run_parallel(800);
  b.run_parallel(800);
  expect_identical_runs(a, b);
}

// Wide fan-out: 16 shard threads replaying concurrently, repeated so
// threads are created and torn down several times. Primarily TSan food;
// the assertions pin the broadcast invariants.
TEST(ParallelStressTest, ManyShardsManyQueriesUnderDeadline) {
  const Micros deadline = calibrated_deadline(16);
  SearchCluster cluster(stress_cluster(16, deadline));
  std::uint64_t total = 0;
  for (int round = 0; round < 3; ++round) {
    cluster.run_parallel(400);
    total += 400;
    ASSERT_EQ(cluster.metrics().queries(), total);
    for (std::uint32_t s = 0; s < cluster.num_shards(); ++s) {
      ASSERT_EQ(cluster.shard(s).metrics().queries(), total);
    }
  }
  EXPECT_GT(cluster.metrics().mean_response().value(), 0.0);
  EXPECT_TRUE(std::isfinite(cluster.metrics().mean_response().value()));
  const auto snap = cluster.telemetry_snapshot();
  const auto broker = cluster.broker_registry().snapshot();
  const auto* queries = broker.find("cluster.broker.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->counter, total);
  EXPECT_FALSE(snap.metrics().empty());
}

// Full policy stack under thread churn: R=2 with retries, hedging, and
// health-driven failover, plus a sick primary replica on every shard so
// all three policies actually fire. run_parallel() must still be
// bit-identical to run() — down to the merged telemetry including the
// broker's retry/hedge/failover counters (all policy state is
// group-confined, so shard threads never share mutable state).
TEST(ParallelStressTest, ReplicatedPolicyRunMatchesSequentialExactly) {
  const Micros deadline = calibrated_deadline(4);
  ASSERT_GT(deadline.value(), 0.0);
  ClusterConfig cfg = stress_cluster(4, deadline);
  cfg.replication.replication_factor = 2;
  cfg.replication.retry_budget = 2;
  cfg.replication.hedge_delay = deadline / 2;
  cfg.replication.failover = true;
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    ReplicaFaultOverride sick;
    sick.shard = s;
    sick.replica = 0;
    sick.hdd.read_unc_rate = 0.02;
    sick.hdd.latency_spike_rate = 0.05;
    sick.hdd.seed = 0xfee1'bad0ull + s;
    cfg.replica_faults.push_back(sick);
  }

  SearchCluster seq(cfg);
  SearchCluster par(cfg);
  seq.run(600);
  par.run_parallel(600);
  expect_identical_runs(seq, par);

  // The config must have exercised the whole stack, and the parallel
  // path must agree on every policy counter, not just the responses.
  const auto broker_seq = seq.broker_registry().snapshot();
  const auto broker_par = par.broker_registry().snapshot();
  for (const char* name :
       {"cluster.broker.retries", "cluster.broker.hedges",
        "cluster.broker.failovers", "cluster.replica.dispatches",
        "cluster.replica.observed_faults"}) {
    const auto* ms = broker_seq.find(name);
    const auto* mp = broker_par.find(name);
    ASSERT_NE(ms, nullptr) << name;
    ASSERT_NE(mp, nullptr) << name;
    EXPECT_EQ(ms->counter, mp->counter) << name;
    EXPECT_GT(ms->counter, 0u) << name;
  }
  const auto snap_seq = seq.replication_snapshot();
  const auto snap_par = par.replication_snapshot();
  EXPECT_EQ(snap_seq.retries, snap_par.retries);
  EXPECT_EQ(snap_seq.hedges, snap_par.hedges);
  EXPECT_EQ(snap_seq.failovers, snap_par.failovers);
  EXPECT_EQ(snap_seq.dispatches, snap_par.dispatches);
  EXPECT_DOUBLE_EQ(snap_seq.coverage_mean, snap_par.coverage_mean);
}

}  // namespace
}  // namespace ssdse
