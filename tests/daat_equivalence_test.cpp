// Equivalence suite pinning the hot DAAT path (precomputed doc-sorted
// views, reusable scratch, bounded-heap top-K) to the seed reference
// implementation (NaiveDaatProcessor): over randomized corpora and
// crafted edge cases, both processors must produce bit-identical
// results — same docs, same score bits, same tie-breaks, same
// DaatStats counters.
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/engine/daat.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

void expect_identical(const ResultEntry& fast, const ResultEntry& ref,
                      const DaatStats& fast_stats,
                      const DaatStats& ref_stats, const Query& q) {
  ASSERT_EQ(fast.query, ref.query);
  ASSERT_EQ(fast.docs.size(), ref.docs.size()) << "query " << q.id.raw();
  for (std::size_t i = 0; i < fast.docs.size(); ++i) {
    EXPECT_EQ(fast.docs[i].doc, ref.docs[i].doc)
        << "query " << q.id.raw() << " rank " << i;
    // Bit-exact scores: identical summation order and idf expressions,
    // not merely approximate equality.
    EXPECT_EQ(std::bit_cast<std::uint32_t>(fast.docs[i].score),
              std::bit_cast<std::uint32_t>(ref.docs[i].score))
        << "query " << q.id.raw() << " rank " << i;
  }
  EXPECT_EQ(fast_stats.docs_scored, ref_stats.docs_scored);
  EXPECT_EQ(fast_stats.postings_touched, ref_stats.postings_touched);
  EXPECT_EQ(fast_stats.skip_hops, ref_stats.skip_hops);
}

void run_suite(const CorpusConfig& cfg, std::uint64_t query_seed,
               std::size_t num_queries, std::size_t top_k) {
  Rng corpus_rng(cfg.seed);
  MaterializedCorpus corpus(cfg, corpus_rng);
  MaterializedIndex index(corpus);
  DaatProcessor fast(top_k);
  NaiveDaatProcessor ref(top_k);
  Rng rng(query_seed);
  for (QueryId qid{}; qid < QueryId{num_queries}; ++qid) {
    const std::size_t n_terms = 1 + rng.next_below(4);
    Query q{qid, {}};
    for (std::size_t i = 0; i < n_terms; ++i) {
      q.terms.push_back(static_cast<TermId>(rng.next_below(cfg.vocab_size)));
    }
    DaatStats fs, rs;
    const ResultEntry fr = fast.intersect(index, q, &fs);
    const ResultEntry rr = ref.intersect(index, q, &rs);
    expect_identical(fr, rr, fs, rs, q);
  }
}

TEST(DaatEquivalenceTest, DenseCorpusRandomQueries) {
  CorpusConfig cfg;
  cfg.num_docs = 3'000;
  cfg.vocab_size = 120;
  cfg.terms_per_doc = 20;
  cfg.max_df_fraction = 0.5;
  cfg.seed = 55;
  run_suite(cfg, /*query_seed=*/101, /*num_queries=*/200, /*top_k=*/10);
}

TEST(DaatEquivalenceTest, DenseCorpusUnboundedTopK) {
  CorpusConfig cfg;
  cfg.num_docs = 2'000;
  cfg.vocab_size = 80;
  cfg.terms_per_doc = 25;
  cfg.max_df_fraction = 0.6;
  cfg.seed = 7;
  run_suite(cfg, 202, 100, /*top_k=*/100'000);  // keep every match
}

TEST(DaatEquivalenceTest, SparseCorpusWithEmptyLists) {
  // Far more vocabulary than postings: many terms have empty lists, so
  // random queries routinely hit the empty-driver early return.
  CorpusConfig cfg;
  cfg.num_docs = 300;
  cfg.vocab_size = 5'000;
  cfg.terms_per_doc = 8;
  cfg.seed = 99;
  run_suite(cfg, 303, 300, 10);
}

class DaatEquivalenceEdgeTest : public ::testing::Test {
 protected:
  static CorpusConfig edge_corpus() {
    CorpusConfig cfg;
    cfg.num_docs = 3'000;
    cfg.vocab_size = 200;
    cfg.terms_per_doc = 15;
    cfg.max_df_fraction = 0.4;
    cfg.seed = 13;
    return cfg;
  }

  DaatEquivalenceEdgeTest()
      : rng_(edge_corpus().seed),
        corpus_(edge_corpus(), rng_),
        index_(corpus_) {}

  void check(const Query& q, std::size_t top_k = 10) {
    DaatProcessor fast(top_k);
    NaiveDaatProcessor ref(top_k);
    DaatStats fs, rs;
    const ResultEntry fr = fast.intersect(index_, q, &fs);
    const ResultEntry rr = ref.intersect(index_, q, &rs);
    expect_identical(fr, rr, fs, rs, q);
  }

  DocId max_doc(TermId t) const {
    DocId m{};
    for (const Posting& p : index_.postings(t)->postings()) {
      m = std::max(m, p.doc);
    }
    return m;
  }

  Rng rng_;
  MaterializedCorpus corpus_;
  MaterializedIndex index_;
};

TEST_F(DaatEquivalenceEdgeTest, EmptyQuery) { check(Query{QueryId{0}, {}}); }

TEST_F(DaatEquivalenceEdgeTest, SingleTermQueries) {
  for (TermId t{}; t < TermId{50}; ++t) {
    check(Query{QueryId{t.raw()}, {t}});
    check(Query{QueryId{1'000 + t.raw()}, {t}}, /*top_k=*/100'000);
  }
}

TEST_F(DaatEquivalenceEdgeTest, DuplicatedTermQuery) {
  check(Query{QueryId{1}, {TermId{3}, TermId{3}}});
  check(Query{QueryId{2}, {TermId{7}, TermId{7}, TermId{7}}});
}

TEST_F(DaatEquivalenceEdgeTest, ExhaustedNonDriverList) {
  // Find a pair where the shorter (driver) list extends past the end of
  // the longer one: mid-intersection the non-driver list runs out, the
  // early-exit path the stats accounting is most sensitive to.
  bool found = false;
  for (TermId a{}; a < TermId{index_.vocab_size()} && !found; ++a) {
    const auto sa = index_.postings(a)->size();
    if (sa == 0) continue;
    for (TermId b{}; b < TermId{index_.vocab_size()} && !found; ++b) {
      const auto sb = index_.postings(b)->size();
      if (a == b || sb <= sa) continue;  // a must drive (strictly shorter)
      if (max_doc(b) < max_doc(a)) {
        check(Query{QueryId{42}, {a, b}});
        check(Query{QueryId{43}, {b, a}});  // term order must not matter
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "corpus yielded no exhausted-driver pair";
}

TEST_F(DaatEquivalenceEdgeTest, ScratchReuseAcrossMixedQueries) {
  // One processor instance across queries of varying width: stale
  // scratch (views/cursors/order/heap) from a wide query must not leak
  // into a narrow one.
  DaatProcessor fast(10);
  NaiveDaatProcessor ref(10);
  Rng rng(404);
  for (QueryId qid{}; qid < QueryId{100}; ++qid) {
    const std::size_t n_terms = 1 + rng.next_below(5);
    Query q{qid, {}};
    for (std::size_t i = 0; i < n_terms; ++i) {
      q.terms.push_back(
          static_cast<TermId>(rng.next_below(index_.vocab_size())));
    }
    DaatStats fs, rs;
    const ResultEntry fr = fast.intersect(index_, q, &fs);
    const ResultEntry rr = ref.intersect(index_, q, &rs);
    expect_identical(fr, rr, fs, rs, q);
  }
}

}  // namespace
}  // namespace ssdse
