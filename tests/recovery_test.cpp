// Persistence & warm-restart subsystem (src/recovery) tests: wire
// format hardening, snapshot atomicity, journal torn-tail repair,
// journal replay semantics, crash injection sweeps, and end-to-end
// warm restarts that must serve bit-identical results.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hybrid/search_system.hpp"
#include "src/recovery/journal.hpp"
#include "src/recovery/recovery_manager.hpp"
#include "src/recovery/snapshot.hpp"
#include "src/recovery/wire.hpp"
#include "src/util/crash_point.hpp"

namespace ssdse {
namespace {

namespace fs = std::filesystem;
using recovery::Frame;
using recovery::RecordType;

// ---------------------------------------------------------------------------
// Helpers.

std::string test_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("ssdse_recovery_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

RbImage make_rb(std::uint32_t cb, QueryId first_qid, std::uint32_t slots) {
  RbImage rb;
  rb.cb = cb;
  for (std::uint32_t i = 0; i < slots; ++i) {
    RbSlotImage s;
    s.qid = first_qid + i;
    s.freq = 3 + i;
    s.born = 100 + i;
    s.state = 0;
    s.docs = {{DocId{static_cast<std::uint32_t>(first_qid.raw() + i)}, 0.5f + i},
              {DocId{static_cast<std::uint32_t>(9000 + i)}, 0.25f}};
    rb.slots.push_back(std::move(s));
  }
  return rb;
}

ListEntryImage make_list(TermId term, std::vector<std::uint32_t> blocks) {
  ListEntryImage e;
  e.term = term;
  e.blocks = std::move(blocks);
  e.cached_bytes = 128 * 1024 * e.blocks.size();
  e.freq = 7;
  e.sc_blocks = static_cast<std::uint32_t>(e.blocks.size());
  e.born = 42;
  e.replaceable = false;
  return e;
}

void expect_rb_eq(const RbImage& a, const RbImage& b) {
  EXPECT_EQ(a.cb, b.cb);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].qid, b.slots[i].qid);
    EXPECT_EQ(a.slots[i].freq, b.slots[i].freq);
    EXPECT_EQ(a.slots[i].born, b.slots[i].born);
    EXPECT_EQ(a.slots[i].state, b.slots[i].state);
    EXPECT_EQ(a.slots[i].docs, b.slots[i].docs);
  }
}

void expect_list_eq(const ListEntryImage& a, const ListEntryImage& b) {
  EXPECT_EQ(a.term, b.term);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.cached_bytes, b.cached_bytes);
  EXPECT_EQ(a.freq, b.freq);
  EXPECT_EQ(a.sc_blocks, b.sc_blocks);
  EXPECT_EQ(a.born, b.born);
  EXPECT_EQ(a.replaceable, b.replaceable);
}

CacheImage small_image() {
  CacheImage image;
  image.logical_now = 777;
  image.rbs = {make_rb(3, QueryId{100}, 6), make_rb(1, QueryId{200}, 4)};
  image.static_rbs = {make_rb(9, QueryId{500}, 6)};
  image.lists = {make_list(TermId{11}, {20, 21}), make_list(TermId{12}, {22})};
  image.static_lists = {make_list(TermId{90}, {30, 31, 32})};
  // Exercise non-trivial slot states.
  image.rbs[0].slots[2].state = 2;
  image.rbs[1].slots[0].state = 1;
  image.lists[0].replaceable = true;
  return image;
}

void expect_image_eq(const CacheImage& a, const CacheImage& b) {
  EXPECT_EQ(a.logical_now, b.logical_now);
  ASSERT_EQ(a.rbs.size(), b.rbs.size());
  for (std::size_t i = 0; i < a.rbs.size(); ++i) expect_rb_eq(a.rbs[i], b.rbs[i]);
  ASSERT_EQ(a.static_rbs.size(), b.static_rbs.size());
  for (std::size_t i = 0; i < a.static_rbs.size(); ++i) {
    expect_rb_eq(a.static_rbs[i], b.static_rbs[i]);
  }
  ASSERT_EQ(a.lists.size(), b.lists.size());
  for (std::size_t i = 0; i < a.lists.size(); ++i) {
    expect_list_eq(a.lists[i], b.lists[i]);
  }
  ASSERT_EQ(a.static_lists.size(), b.static_lists.size());
  for (std::size_t i = 0; i < a.static_lists.size(); ++i) {
    expect_list_eq(a.static_lists[i], b.static_lists[i]);
  }
}

SystemConfig recovery_system(const std::string& dir,
                             CachePolicy policy = CachePolicy::kCblru) {
  SystemConfig cfg;
  cfg.set_num_docs(200'000);
  cfg.set_memory_budget(8 * MiB);
  cfg.cache.policy = policy;
  cfg.training_queries = 2'000;
  cfg.recovery.enabled = true;
  cfg.recovery.dir = dir;
  return cfg;
}

/// Truth oracle: the same query pipeline with caching off recomputes
/// every result from the index — what an always-up run would serve.
std::vector<ScoredDoc> truth_docs(SearchSystem& truth, QueryId qid) {
  return truth.execute(truth.generator().query_for_rank(qid.raw())).result.docs;
}

SystemConfig truth_config() {
  SystemConfig cfg;
  cfg.set_num_docs(200'000);
  cfg.set_memory_budget(8 * MiB);
  cfg.use_cache = false;
  cfg.training_queries = 0;
  return cfg;
}

/// Every live recovered result entry must be bit-identical to what the
/// always-up pipeline computes for that query.
void expect_recovered_results_match_truth(SearchSystem& recovered,
                                          SearchSystem& truth,
                                          std::size_t max_checked = 30) {
  const CacheImage image = recovered.cache_manager().export_image();
  std::size_t checked = 0;
  auto sweep = [&](const std::vector<RbImage>& rbs) {
    for (const RbImage& rb : rbs) {
      for (const RbSlotImage& slot : rb.slots) {
        if (slot.state == 2 || checked >= max_checked) continue;
        ++checked;
        EXPECT_EQ(slot.docs, truth_docs(truth, slot.qid))
            << "recovered query " << slot.qid.raw() << " differs from truth";
      }
    }
  };
  sweep(image.rbs);
  sweep(image.static_rbs);
}

// ---------------------------------------------------------------------------
// Wire format.

TEST(RecoveryWireTest, FrameRoundTrip) {
  std::vector<std::uint8_t> stream;
  recovery::encode_frame(RecordType::kJournalListErase, {1, 2, 3}, stream);
  recovery::encode_frame(RecordType::kRb, {}, stream);

  std::size_t offset = 0;
  auto f1 = recovery::decode_frame(stream.data(), stream.size(), offset);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, RecordType::kJournalListErase);
  EXPECT_EQ(f1->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  auto f2 = recovery::decode_frame(stream.data(), stream.size(), offset);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, RecordType::kRb);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_EQ(offset, stream.size());
  // Nothing left: a third decode fails without moving the offset.
  EXPECT_FALSE(recovery::decode_frame(stream.data(), stream.size(), offset));
  EXPECT_EQ(offset, stream.size());
}

TEST(RecoveryWireTest, FrameRejectsEveryTruncation) {
  std::vector<std::uint8_t> stream;
  recovery::encode_frame(RecordType::kList, {9, 8, 7, 6, 5}, stream);
  for (std::size_t len = 0; len < stream.size(); ++len) {
    std::size_t offset = 0;
    EXPECT_FALSE(recovery::decode_frame(stream.data(), len, offset))
        << "accepted a frame truncated to " << len << " bytes";
    EXPECT_EQ(offset, 0u);
  }
}

TEST(RecoveryWireTest, FrameRejectsAnyBitFlip) {
  std::vector<std::uint8_t> stream;
  recovery::encode_frame(RecordType::kJournalRbFlush, {0xAB, 0xCD}, stream);
  for (std::size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = stream;
      bad[byte] ^= static_cast<std::uint8_t>(1 << bit);
      std::size_t offset = 0;
      EXPECT_FALSE(recovery::decode_frame(bad.data(), bad.size(), offset))
          << "accepted a flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(RecoveryWireTest, RbCodecRoundTrip) {
  const RbImage rb = make_rb(17, QueryId{1000}, 6);
  recovery::ByteWriter w;
  recovery::encode_rb(rb, w);
  recovery::ByteReader r(w.data().data(), w.data().size());
  RbImage back;
  ASSERT_TRUE(recovery::decode_rb(r, back));
  EXPECT_TRUE(r.at_end());
  expect_rb_eq(rb, back);
}

TEST(RecoveryWireTest, ListEntryCodecRoundTrip) {
  ListEntryImage e = make_list(TermId{123}, {5, 6, 9});
  e.replaceable = true;
  recovery::ByteWriter w;
  recovery::encode_list_entry(e, w);
  recovery::ByteReader r(w.data().data(), w.data().size());
  ListEntryImage back;
  ASSERT_TRUE(recovery::decode_list_entry(r, back));
  EXPECT_TRUE(r.at_end());
  expect_list_eq(e, back);
}

// ---------------------------------------------------------------------------
// Snapshot.

TEST(SnapshotTest, RoundTrip) {
  const std::string dir = test_dir("snapshot_roundtrip");
  const std::string path = dir + "/snapshot.ssdse";
  const CacheImage image = small_image();
  ASSERT_TRUE(recovery::write_snapshot(path, image, 0xBEEF));
  auto back = recovery::read_snapshot(path, 0xBEEF);
  ASSERT_TRUE(back.has_value());
  expect_image_eq(image, *back);
}

TEST(SnapshotTest, FingerprintMismatchRejected) {
  const std::string dir = test_dir("snapshot_fprint");
  const std::string path = dir + "/snapshot.ssdse";
  ASSERT_TRUE(recovery::write_snapshot(path, small_image(), 0xBEEF));
  EXPECT_FALSE(recovery::read_snapshot(path, 0xBEE0).has_value());
}

TEST(SnapshotTest, MissingFileIsColdStart) {
  const std::string dir = test_dir("snapshot_missing");
  EXPECT_FALSE(recovery::read_snapshot(dir + "/nope.ssdse", 1).has_value());
}

TEST(SnapshotTest, NeverReadsPartialFile) {
  const std::string dir = test_dir("snapshot_torn");
  const std::string path = dir + "/snapshot.ssdse";
  ASSERT_TRUE(recovery::write_snapshot(path, small_image(), 0xBEEF));
  const auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 64u);
  // A snapshot truncated anywhere is rejected whole — even when the cut
  // lands exactly on a record boundary (the footer counts catch it).
  for (std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{13},
                          bytes.size() / 3, bytes.size() / 2,
                          bytes.size() - 1}) {
    write_file(path, {bytes.begin(), bytes.begin() + len});
    EXPECT_FALSE(recovery::read_snapshot(path, 0xBEEF).has_value())
        << "accepted a snapshot truncated to " << len << " bytes";
  }
  // A corrupt byte in the middle is rejected too.
  auto flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x10;
  write_file(path, flipped);
  EXPECT_FALSE(recovery::read_snapshot(path, 0xBEEF).has_value());
  // And the pristine bytes still verify.
  write_file(path, bytes);
  EXPECT_TRUE(recovery::read_snapshot(path, 0xBEEF).has_value());
}

TEST(SnapshotTest, RewriteReplacesAtomically) {
  const std::string dir = test_dir("snapshot_rewrite");
  const std::string path = dir + "/snapshot.ssdse";
  ASSERT_TRUE(recovery::write_snapshot(path, small_image(), 7));
  CacheImage second;
  second.logical_now = 1;
  second.rbs = {make_rb(2, QueryId{55}, 1)};
  ASSERT_TRUE(recovery::write_snapshot(path, second, 7));
  auto back = recovery::read_snapshot(path, 7);
  ASSERT_TRUE(back.has_value());
  expect_image_eq(second, *back);
  // No tmp file left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Journal.

std::vector<std::uint8_t> payload_of(std::uint8_t seed, std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i);
  }
  return p;
}

TEST(JournalTest, AppendScanRoundTrip) {
  const std::string dir = test_dir("journal_roundtrip");
  const std::string path = dir + "/journal.ssdse";
  {
    recovery::JournalWriter w(path);
    w.append(RecordType::kJournalRbFlush, payload_of(1, 10));
    w.append(RecordType::kJournalResultInvalidate, payload_of(2, 8));
    w.append(RecordType::kJournalListErase, payload_of(3, 4));
  }
  const auto scan = recovery::read_journal(path);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].type, RecordType::kJournalRbFlush);
  EXPECT_EQ(scan.records[0].payload, payload_of(1, 10));
  EXPECT_EQ(scan.records[2].payload, payload_of(3, 4));
  EXPECT_EQ(scan.valid_bytes, fs::file_size(path));
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(JournalTest, MissingFileIsEmptyScan) {
  const std::string dir = test_dir("journal_missing");
  const auto scan = recovery::read_journal(dir + "/nope.ssdse");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(JournalTest, TornTailTruncatedAtEveryByteOffset) {
  const std::string dir = test_dir("journal_torn");
  const std::string path = dir + "/journal.ssdse";
  {
    recovery::JournalWriter w(path);
    w.append(RecordType::kJournalRbFlush, payload_of(10, 24));
    w.append(RecordType::kJournalListInstall, payload_of(20, 5));
    w.append(RecordType::kJournalListErase, payload_of(30, 17));
  }
  const auto bytes = read_file(path);
  // Record boundaries, recovered by decoding the intact stream.
  std::vector<std::size_t> boundaries{0};
  {
    std::size_t offset = 0;
    while (recovery::decode_frame(bytes.data(), bytes.size(), offset)) {
      boundaries.push_back(offset);
    }
  }
  ASSERT_EQ(boundaries.size(), 4u);

  const std::string cut = dir + "/cut.ssdse";
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    write_file(cut, {bytes.begin(), bytes.begin() + len});
    const auto scan = recovery::read_journal(cut);
    // The longest consistent prefix is the last boundary at or below the
    // cut; everything after it is reported torn.
    std::size_t want_records = 0;
    while (want_records + 1 < boundaries.size() &&
           boundaries[want_records + 1] <= len) {
      ++want_records;
    }
    EXPECT_EQ(scan.records.size(), want_records) << "cut at " << len;
    EXPECT_EQ(scan.valid_bytes, boundaries[want_records]) << "cut at " << len;
    EXPECT_EQ(scan.torn_bytes, len - boundaries[want_records])
        << "cut at " << len;
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].payload,
                payload_of(static_cast<std::uint8_t>(10 * (i + 1)),
                           i == 0 ? 24 : i == 1 ? 5 : 17));
    }
    // Repair truncates to the consistent prefix; appending then extends
    // a clean stream.
    ASSERT_TRUE(recovery::truncate_journal(cut, scan.valid_bytes));
    {
      recovery::JournalWriter w(cut);
      w.append(RecordType::kJournalResultInvalidate, payload_of(40, 3));
    }
    const auto repaired = recovery::read_journal(cut);
    ASSERT_EQ(repaired.records.size(), want_records + 1);
    EXPECT_EQ(repaired.records.back().payload, payload_of(40, 3));
    EXPECT_EQ(repaired.torn_bytes, 0u);
  }
}

TEST(JournalTest, InjectedByteTearPersistsExactPrefix) {
  const std::string dir = test_dir("journal_tear");
  const std::string path = dir + "/journal.ssdse";
  recovery::JournalWriter w(path);
  w.append(RecordType::kJournalRbFlush, payload_of(1, 30));
  const Bytes first_end = w.bytes_written();

  // Tear 7 bytes into the second record's frame.
  CrashInjector::instance().arm_byte(first_end + 7);
  EXPECT_THROW(w.append(RecordType::kJournalListInstall, payload_of(2, 30)),
               CrashException);
  EXPECT_FALSE(CrashInjector::instance().armed());  // crash_now disarms
  EXPECT_EQ(fs::file_size(path), first_end + 7);

  const auto scan = recovery::read_journal(path);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].payload, payload_of(1, 30));
  EXPECT_EQ(scan.valid_bytes, first_end);
  EXPECT_EQ(scan.torn_bytes, 7u);
}

TEST(CrashInjectorTest, SiteHookFiresOnNthHit) {
  auto& inj = CrashInjector::instance();
  inj.arm_site("unit.site", 3);
  EXPECT_NO_THROW(SSDSE_CRASH_POINT("unit.site"));
  EXPECT_NO_THROW(SSDSE_CRASH_POINT("other.site"));  // different site
  EXPECT_NO_THROW(SSDSE_CRASH_POINT("unit.site"));
  EXPECT_THROW(SSDSE_CRASH_POINT("unit.site"), CrashException);
  // Disarmed after firing: the hot path is free again.
  EXPECT_FALSE(inj.armed());
  EXPECT_NO_THROW(SSDSE_CRASH_POINT("unit.site"));
}

// ---------------------------------------------------------------------------
// Journal replay.

Frame rb_flush_frame(const RbImage& rb) {
  recovery::ByteWriter w;
  recovery::encode_rb(rb, w);
  return Frame{RecordType::kJournalRbFlush, w.take()};
}

TEST(ReplayTest, RbFlushReplacesBlockAndInvalidatesOldCopies) {
  CacheImage image;
  image.rbs = {make_rb(1, QueryId{100}, 6), make_rb(2, QueryId{200}, 6)};

  // A new RB lands on block 2 and re-caches query 103 (older copy lives
  // in block 1).
  RbImage fresh = make_rb(2, QueryId{300}, 5);
  fresh.slots[0].qid = QueryId{103};
  ASSERT_TRUE(recovery::apply_journal_record(rb_flush_frame(fresh), image));

  ASSERT_EQ(image.rbs.size(), 2u);
  EXPECT_EQ(image.rbs.front().cb, 2u);  // MRU position
  EXPECT_EQ(image.rbs.front().slots[0].qid.raw(), 103u);
  // Old copy of 103 in block 1 is now invalid; its neighbours live on.
  const RbImage& old = image.rbs.back();
  EXPECT_EQ(old.cb, 1u);
  EXPECT_EQ(old.slots[3].qid, QueryId{103});
  EXPECT_EQ(old.slots[3].state, 2);
  EXPECT_EQ(old.slots[2].state, 0);
}

TEST(ReplayTest, ReplayIsIdempotent) {
  CacheImage image;
  image.rbs = {make_rb(1, QueryId{100}, 6)};
  const Frame f = rb_flush_frame(make_rb(2, QueryId{300}, 6));
  ASSERT_TRUE(recovery::apply_journal_record(f, image));
  ASSERT_TRUE(recovery::apply_journal_record(f, image));
  ASSERT_EQ(image.rbs.size(), 2u);
  EXPECT_EQ(image.rbs.front().cb, 2u);
}

TEST(ReplayTest, InvalidateAndListRecords) {
  CacheImage image = small_image();

  {  // Result invalidation hits dynamic and static copies.
    recovery::ByteWriter w;
    w.u64(500);  // lives in static_rbs[0].slots[0]
    ASSERT_TRUE(recovery::apply_journal_record(
        Frame{RecordType::kJournalResultInvalidate, w.take()}, image));
    EXPECT_EQ(image.static_rbs[0].slots[0].state, 2);
  }
  {  // List install evicts the same term and block-colliding entries.
    ListEntryImage e = make_list(TermId{40}, {21, 22});  // collides with terms 11, 12
    recovery::ByteWriter w;
    recovery::encode_list_entry(e, w);
    ASSERT_TRUE(recovery::apply_journal_record(
        Frame{RecordType::kJournalListInstall, w.take()}, image));
    ASSERT_EQ(image.lists.size(), 1u);
    EXPECT_EQ(image.lists.front().term.raw(), 40u);
  }
  {  // List erase.
    recovery::ByteWriter w;
    w.u32(40);
    ASSERT_TRUE(recovery::apply_journal_record(
        Frame{RecordType::kJournalListErase, w.take()}, image));
    EXPECT_TRUE(image.lists.empty());
  }
  {  // Undecodable payload is rejected, not applied.
    recovery::ByteWriter w;
    w.u8(1);  // too short for any record
    EXPECT_FALSE(recovery::apply_journal_record(
        Frame{RecordType::kJournalRbFlush, w.take()}, image));
  }
}

// ---------------------------------------------------------------------------
// End-to-end warm restart.

TEST(WarmRestartTest, ServesPriorSsdResultsBitIdentical) {
  const std::string dir = test_dir("warm_cblru");
  const SystemConfig cfg = recovery_system(dir);

  std::vector<QueryId> on_ssd;
  {
    SearchSystem a(cfg);
    EXPECT_FALSE(a.warm_started());
    a.run(4'000);
    const CacheImage image = a.cache_manager().export_image();
    for (const RbImage& rb : image.rbs) {
      for (const RbSlotImage& slot : rb.slots) {
        if (slot.state != 2 && on_ssd.size() < 20) on_ssd.push_back(slot.qid);
      }
    }
    ASSERT_FALSE(on_ssd.empty()) << "churn did not populate the SSD cache";
    ASSERT_TRUE(a.checkpoint());
  }

  SearchSystem b(cfg);
  ASSERT_TRUE(b.warm_started());
  ASSERT_NE(b.recovery_stats(), nullptr);
  EXPECT_TRUE(b.recovery_stats()->warm);
  EXPECT_GE(b.recovery_stats()->result_entries_recovered, on_ssd.size());

  SearchSystem truth(truth_config());
  for (QueryId qid : on_ssd) {
    const auto out = b.execute(b.generator().query_for_rank(qid.raw()));
    EXPECT_TRUE(out.result_from_cache) << "query " << qid.raw() << " missed";
    EXPECT_EQ(out.result.docs, truth_docs(truth, qid)) << "query " << qid.raw();
  }
}

TEST(WarmRestartTest, RestoredListsServeFromSsd) {
  const std::string dir = test_dir("warm_lists");
  const SystemConfig cfg = recovery_system(dir);

  std::vector<TermId> terms;
  {
    SearchSystem a(cfg);
    a.run(4'000);
    const CacheImage image = a.cache_manager().export_image();
    for (const ListEntryImage& e : image.lists) {
      if (terms.size() < 10) terms.push_back(e.term);
    }
    ASSERT_FALSE(terms.empty()) << "no lists reached the SSD cache";
    ASSERT_TRUE(a.checkpoint());
  }

  SearchSystem b(cfg);
  ASSERT_TRUE(b.warm_started());
  EXPECT_GE(b.recovery_stats()->list_entries_recovered, terms.size());
  for (TermId term : terms) {
    Micros t = micros(0);
    EXPECT_EQ(b.cache_manager().fetch_list(term, &t), Tier::kSsd)
        << "term " << term.raw() << " not served from the recovered SSD cache";
  }
}

TEST(WarmRestartTest, CbslruStaticPartitionSurvivesRestart) {
  const std::string dir = test_dir("warm_cbslru");
  const SystemConfig cfg = recovery_system(dir, CachePolicy::kCbslru);

  QueryId hottest{};
  {
    SearchSystem a(cfg);
    ASSERT_TRUE(a.log_analysis().has_value());
    hottest = a.log_analysis()->queries_by_freq[0].first;
    ASSERT_TRUE(a.cache_manager().ssd_results()->is_static(hottest));
    a.run(1'000);
    ASSERT_TRUE(a.checkpoint());
  }

  SearchSystem b(cfg);
  ASSERT_TRUE(b.warm_started());
  EXPECT_TRUE(b.cache_manager().ssd_results()->is_static(hottest));
  SearchSystem truth(truth_config());
  const auto out = b.execute(b.generator().query_for_rank(hottest.raw()));
  EXPECT_TRUE(out.result_from_cache);
  EXPECT_EQ(out.result.docs, truth_docs(truth, hottest));
}

TEST(WarmRestartTest, FingerprintMismatchForcesColdStart) {
  const std::string dir = test_dir("warm_fprint");
  {
    SearchSystem a(recovery_system(dir));
    a.run(500);
    ASSERT_TRUE(a.checkpoint());
  }
  SystemConfig other = recovery_system(dir);
  other.cache.ssd_result_capacity *= 2;  // resized cache: blocks re-map
  SearchSystem b(other);
  EXPECT_FALSE(b.warm_started());
  ASSERT_NE(b.recovery_stats(), nullptr);
  EXPECT_TRUE(b.recovery_stats()->attempted);
  EXPECT_FALSE(b.recovery_stats()->warm);
}

TEST(WarmRestartTest, LruBaselineDoesNotPersist) {
  const std::string dir = test_dir("warm_lru");
  SystemConfig cfg = recovery_system(dir, CachePolicy::kLru);
  SearchSystem a(cfg);
  a.run(300);
  EXPECT_FALSE(a.checkpoint());  // no persistence machinery attached
  EXPECT_EQ(a.recovery_stats(), nullptr);
  EXPECT_FALSE(a.warm_started());
}

// ---------------------------------------------------------------------------
// Crash injection sweeps: for every injected crash point the restarted
// system must come up consistent — every surviving entry bit-identical
// to the always-up pipeline, and the system must keep running.

TEST(CrashSweepTest, SiteCrashesRecoverConsistently) {
  SearchSystem truth(truth_config());
  const struct {
    const char* site;
    std::uint64_t hits;
    std::uint64_t snapshot_every;
  } cases[] = {
      {"write_buffer.group_ready", 1, 0},
      {"write_buffer.group_ready", 3, 0},
      {"ssd_cache_file.write", 1, 0},
      {"ssd_cache_file.write", 4, 0},
      // With periodic checkpoints the journal resets mid-run; the crash
      // then lands after a snapshot + partial journal.
      {"ssd_cache_file.write", 6, 700},
  };
  int crashes = 0;
  for (const auto& c : cases) {
    const std::string dir = test_dir(std::string("crash_") + c.site + "_" +
                                     std::to_string(c.hits) + "_" +
                                     std::to_string(c.snapshot_every));
    SystemConfig cfg = recovery_system(dir);
    cfg.recovery.snapshot_every = c.snapshot_every;

    auto a = std::make_unique<SearchSystem>(cfg);
    CrashInjector::instance().arm_site(c.site, c.hits);
    bool crashed = false;
    try {
      a->run(3'000);
    } catch (const CrashException&) {
      crashed = true;
    }
    CrashInjector::instance().disarm();
    ASSERT_TRUE(crashed) << c.site << " was never reached";
    ++crashes;
    a.reset();  // the process died; abandon it

    SearchSystem b(cfg);
    ASSERT_TRUE(b.warm_started()) << c.site;
    expect_recovered_results_match_truth(b, truth);
    // The recovered system keeps serving.
    b.run(500);
    EXPECT_EQ(b.metrics().queries(), 500u);
  }
  EXPECT_EQ(crashes, 5);
}

TEST(CrashSweepTest, JournalTornAtArbitraryByteOffsetsRecovers) {
  SearchSystem truth(truth_config());
  // Absolute journal offsets to tear at: inside the first frame header,
  // on and around payload bytes, and deep in the stream.
  const std::uint64_t offsets[] = {0, 1, 8, 13, 14, 64, 321, 2'000};
  for (std::uint64_t off : offsets) {
    const std::string dir = test_dir("tear_" + std::to_string(off));
    const SystemConfig cfg = recovery_system(dir);

    auto a = std::make_unique<SearchSystem>(cfg);
    // Arm after construction: the initial (empty) checkpoint has already
    // reset the journal, so appends count from offset 0.
    CrashInjector::instance().arm_byte(off);
    bool crashed = false;
    try {
      a->run(3'000);
    } catch (const CrashException&) {
      crashed = true;
    }
    CrashInjector::instance().disarm();
    ASSERT_TRUE(crashed) << "journal never reached offset " << off;
    a.reset();
    // The torn append persisted exactly the prefix before the armed byte.
    EXPECT_EQ(fs::file_size(fs::path(dir) / "journal.ssdse"), off);

    SearchSystem b(cfg);
    ASSERT_TRUE(b.warm_started()) << "offset " << off;
    const auto* stats = b.recovery_stats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->journal_valid_bytes + stats->journal_torn_bytes, off);
    EXPECT_EQ(stats->journal_records_rejected, 0u);
    expect_recovered_results_match_truth(b, truth);
    b.run(300);
    EXPECT_EQ(b.metrics().queries(), 300u);
  }
}

}  // namespace
}  // namespace ssdse
