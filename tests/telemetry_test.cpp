// Telemetry layer tests: JSON writer, metrics registry + snapshot
// merge, per-query tracer, and the end-to-end run report.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/hybrid/cluster.hpp"
#include "src/hybrid/run_report.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/telemetry/json_writer.hpp"
#include "src/telemetry/registry.hpp"
#include "src/telemetry/tracer.hpp"

namespace ssdse {
namespace {

using telemetry::JsonWriter;
using telemetry::MetricKind;
using telemetry::MetricsRegistry;
using telemetry::QueryTracer;
using telemetry::RegistrySnapshot;
using telemetry::SpanTimer;
using telemetry::TraceStage;

// --- JsonWriter ---------------------------------------------------------

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.value(1);
  w.key("b");
  w.begin_array();
  w.value(2);
  w.value(3);
  w.end_array();
  w.key("c");
  w.begin_object();
  w.key("d");
  w.value(true);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,3],"c":{"d":true}})");
}

TEST(JsonWriterTest, EscapesStringsAndNormalizesNonFinite) {
  JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value(std::string("a\"b\\c\nd\te"));
  w.key("nan");
  w.value(0.0 / 0.0);
  w.key("inf");
  w.value(1.0 / 0.0);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"s":"a\"b\\c\nd\te","nan":0,"inf":0})");
}

TEST(JsonWriterTest, IntegerValuesHaveNoExponent) {
  JsonWriter w;
  w.begin_array();
  w.value(std::uint64_t{9983495460346675520ull});
  w.value(std::int64_t{-42});
  w.end_array();
  EXPECT_EQ(w.str(), "[9983495460346675520,-42]");
}

// --- MetricsRegistry ----------------------------------------------------

TEST(RegistryTest, CounterTracksLiveField) {
  MetricsRegistry r;
  std::uint64_t field = 5;
  r.counter("a.hits", &field);
  field = 9;  // snapshot must read the live value, not the one at
              // registration time
  const auto snap = r.snapshot();
  const auto* m = snap.find("a.hits");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->counter, 9u);
}

TEST(RegistryTest, AllMetricShapes) {
  MetricsRegistry r;
  std::uint64_t c = 3;
  LatencyHistogram h;
  h.add(10.0);
  h.add(20.0);
  StreamingStats st;
  st.add(1.0);
  st.add(3.0);
  r.counter("c", &c);
  r.counter_fn("cf", [] { return std::uint64_t{7}; });
  r.gauge("g", [] { return 0.5; });
  r.gauge_value("gv", 2.5);
  r.histogram("h", &h);
  r.stats("s", &st);  // expands to s.count / s.mean / s.max
  const auto snap = r.snapshot();
  EXPECT_EQ(snap.find("c")->counter, 3u);
  EXPECT_EQ(snap.find("cf")->counter, 7u);
  EXPECT_DOUBLE_EQ(snap.find("g")->gauge.mean(), 0.5);
  EXPECT_DOUBLE_EQ(snap.find("gv")->gauge.mean(), 2.5);
  EXPECT_EQ(snap.find("h")->hist.count(), 2u);
  EXPECT_EQ(snap.find("s.count")->counter, 2u);
  EXPECT_DOUBLE_EQ(snap.find("s.mean")->gauge.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.find("s.max")->gauge.mean(), 3.0);
}

TEST(RegistryTest, SnapshotSortedByName) {
  MetricsRegistry r;
  std::uint64_t x = 0;
  r.counter("z.last", &x);
  r.counter("a.first", &x);
  r.counter("m.middle", &x);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.metrics().size(), 3u);
  EXPECT_EQ(snap.metrics()[0].name, "a.first");
  EXPECT_EQ(snap.metrics()[1].name, "m.middle");
  EXPECT_EQ(snap.metrics()[2].name, "z.last");
}

TEST(RegistryTest, DuplicateNameThrows) {
  MetricsRegistry r;
  std::uint64_t x = 0;
  r.counter("dup", &x);
  EXPECT_THROW(r.counter("dup", &x), std::invalid_argument);
  EXPECT_THROW(r.gauge_value("dup", 1.0), std::invalid_argument);
}

TEST(RegistryTest, FindMissingReturnsNull) {
  MetricsRegistry r;
  EXPECT_EQ(r.snapshot().find("nope"), nullptr);
}

// --- RegistrySnapshot::merge (cross-shard aggregation) ------------------

TEST(SnapshotMergeTest, CountersSumGaugesSampleHistsCombine) {
  // Snapshots detach from their sources, so the backing storage only
  // needs to outlive snapshot(), not the merge.
  auto make = [](std::uint64_t hits, double ratio, double lat) {
    MetricsRegistry reg;
    const std::uint64_t h = hits;
    LatencyHistogram hist;
    hist.add(lat);
    reg.counter("hits", &h);
    reg.gauge("ratio", [ratio] { return ratio; });
    reg.histogram("lat", &hist);
    return reg.snapshot();
  };
  RegistrySnapshot a = make(10, 0.2, 100.0);
  const RegistrySnapshot b = make(32, 0.8, 900.0);
  a.merge(b);
  EXPECT_EQ(a.find("hits")->counter, 42u);
  // Gauge folds shard samples: min/mean/max over shards.
  EXPECT_EQ(a.find("ratio")->gauge.count(), 2u);
  EXPECT_DOUBLE_EQ(a.find("ratio")->gauge.min(), 0.2);
  EXPECT_DOUBLE_EQ(a.find("ratio")->gauge.max(), 0.8);
  EXPECT_DOUBLE_EQ(a.find("ratio")->gauge.mean(), 0.5);
  EXPECT_EQ(a.find("lat")->hist.count(), 2u);
}

TEST(SnapshotMergeTest, DisjointNamesAreKept) {
  MetricsRegistry ra, rb;
  std::uint64_t x = 1, y = 2;
  ra.counter("only.a", &x);
  rb.counter("only.b", &y);
  RegistrySnapshot a = ra.snapshot();
  a.merge(rb.snapshot());
  ASSERT_EQ(a.metrics().size(), 2u);
  EXPECT_EQ(a.find("only.a")->counter, 1u);
  EXPECT_EQ(a.find("only.b")->counter, 2u);
}

TEST(SnapshotMergeTest, KindMismatchThrows) {
  MetricsRegistry ra, rb;
  std::uint64_t x = 1;
  ra.counter("m", &x);
  rb.gauge_value("m", 1.0);
  RegistrySnapshot a = ra.snapshot();
  EXPECT_THROW(a.merge(rb.snapshot()), std::invalid_argument);
}

TEST(SnapshotMergeTest, MergeWithSelfCopyDoublesCounters) {
  MetricsRegistry r;
  std::uint64_t x = 21;
  r.counter("c", &x);
  RegistrySnapshot a = r.snapshot();
  const RegistrySnapshot copy = r.snapshot();
  a.merge(copy);
  EXPECT_EQ(a.find("c")->counter, 42u);
}

// --- QueryTracer --------------------------------------------------------

TEST(TracerTest, SpansAccumulateAndFeedAggregates) {
  QueryTracer t;
  t.begin_query(QueryId{1});
  t.add_span(TraceStage::kResultProbe, micros(10.0));
  t.add_span(TraceStage::kListFetchHdd, micros(5000.0));
  t.add_span(TraceStage::kListFetchHdd, micros(3000.0));  // repeated stage adds
  t.end_query(micros(8010.0));
  EXPECT_EQ(t.queries_traced(), 1u);
  const auto recent = t.recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].query, QueryId{1});
  EXPECT_DOUBLE_EQ(recent[0].total.value(), 8010.0);
  EXPECT_DOUBLE_EQ(
      recent[0]
          .stage_us[static_cast<std::size_t>(TraceStage::kListFetchHdd)]
          .value(),
      8000.0);
  EXPECT_TRUE(recent[0].touched_stage(TraceStage::kResultProbe));
  EXPECT_TRUE(recent[0].touched_stage(TraceStage::kListFetchHdd));
  EXPECT_FALSE(recent[0].touched_stage(TraceStage::kDaatScore));
  // Untouched stages contribute nothing to aggregates.
  EXPECT_EQ(t.stage_stats(TraceStage::kDaatScore).count(), 0u);
  EXPECT_EQ(t.stage_stats(TraceStage::kListFetchHdd).count(), 1u);
  EXPECT_DOUBLE_EQ(t.stage_stats(TraceStage::kListFetchHdd).mean(), 8000.0);
  EXPECT_EQ(t.stage_hist(TraceStage::kResultProbe).count(), 1u);
}

TEST(TracerTest, RingKeepsNewestOldestFirst) {
  QueryTracer t(/*ring_capacity=*/3);
  for (QueryId q{}; q < QueryId{10}; ++q) {
    t.begin_query(q);
    t.add_span(TraceStage::kDaatScore, micros(1.0));
    t.end_query(micros(1.0));
  }
  EXPECT_EQ(t.queries_traced(), 10u);
  const auto recent = t.recent();
  ASSERT_EQ(recent.size(), 3u);  // bounded by capacity
  EXPECT_EQ(recent[0].query.raw(), 7u);
  EXPECT_EQ(recent[1].query, QueryId{8});
  EXPECT_EQ(recent[2].query, QueryId{9});
  // Aggregates still cover all 10 queries.
  EXPECT_EQ(t.stage_stats(TraceStage::kDaatScore).count(), 10u);
}

TEST(TracerTest, DisabledRecordsNothing) {
  QueryTracer t;
  t.set_enabled(false);
  t.begin_query(QueryId{1});
  t.add_span(TraceStage::kDaatScore, micros(5.0));
  t.end_query(micros(5.0));
  EXPECT_EQ(t.queries_traced(), 0u);
  EXPECT_TRUE(t.recent().empty());
  EXPECT_EQ(t.stage_stats(TraceStage::kDaatScore).count(), 0u);
}

TEST(TracerTest, MergeAggregatesFoldsShards) {
  QueryTracer a, b;
  a.begin_query(QueryId{1});
  a.add_span(TraceStage::kDaatScore, micros(100.0));
  a.end_query(micros(100.0));
  b.begin_query(QueryId{2});
  b.add_span(TraceStage::kDaatScore, micros(300.0));
  b.end_query(micros(300.0));
  a.merge_aggregates(b);
  EXPECT_EQ(a.queries_traced(), 2u);
  EXPECT_EQ(a.stage_stats(TraceStage::kDaatScore).count(), 2u);
  EXPECT_DOUBLE_EQ(a.stage_stats(TraceStage::kDaatScore).mean(), 200.0);
  EXPECT_EQ(a.stage_hist(TraceStage::kDaatScore).count(), 2u);
  // Ring buffers are per-shard: merge does not import b's traces.
  EXPECT_EQ(a.recent().size(), 1u);
}

TEST(TracerTest, ClearResetsEverything) {
  QueryTracer t(/*ring_capacity=*/2);
  for (QueryId q{}; q < QueryId{5}; ++q) {
    t.begin_query(q);
    t.add_span(TraceStage::kResultProbe, micros(1.0));
    t.end_query(micros(1.0));
  }
  t.clear();
  EXPECT_EQ(t.queries_traced(), 0u);
  EXPECT_TRUE(t.recent().empty());
  EXPECT_EQ(t.stage_stats(TraceStage::kResultProbe).count(), 0u);
  // Still usable after clear.
  t.begin_query(QueryId{9});
  t.add_span(TraceStage::kResultProbe, micros(2.0));
  t.end_query(micros(2.0));
  EXPECT_EQ(t.queries_traced(), 1u);
  EXPECT_EQ(t.recent()[0].query, QueryId{9});
}

TEST(TracerTest, SpanTimerAttributesClockDelta) {
  QueryTracer t;
  Micros clock = micros(100.0);
  t.begin_query(QueryId{1});
  {
    SpanTimer span(t, TraceStage::kListFetchSsd, clock);
    clock += micros(250.0);  // simulated work advances the clock
  }
  t.end_query(clock - micros(100.0));
  const auto recent = t.recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_DOUBLE_EQ(
      recent[0]
          .stage_us[static_cast<std::size_t>(TraceStage::kListFetchSsd)]
          .value(),
      250.0);
}

TEST(TracerTest, StageNamesAreStableSchema) {
  // scripts/check_bench_json.py hard-codes these names; renaming a stage
  // is a schema change and must update the validator + DESIGN.md §9.
  EXPECT_STREQ(to_string(TraceStage::kResultProbe), "result_probe");
  EXPECT_STREQ(to_string(TraceStage::kListFetchMem), "list_fetch_mem");
  EXPECT_STREQ(to_string(TraceStage::kListFetchSsd), "list_fetch_ssd");
  EXPECT_STREQ(to_string(TraceStage::kListFetchHdd), "list_fetch_hdd");
  EXPECT_STREQ(to_string(TraceStage::kDaatScore), "daat_score");
  EXPECT_STREQ(to_string(TraceStage::kWriteBufferFlush),
               "write_buffer_flush");
  EXPECT_STREQ(to_string(TraceStage::kFtlGc), "ftl_gc");
}

// --- SearchSystem integration -------------------------------------------

SystemConfig small_system() {
  SystemConfig cfg;
  cfg.set_num_docs(100'000);
  cfg.set_memory_budget(4 * MiB);
  cfg.training_queries = 1'000;
  return cfg;
}

TEST(SystemTelemetryTest, RegistryAgreesWithCacheStats) {
  SearchSystem system(small_system());
  system.run(1'500);
  const auto snap = system.telemetry_registry().snapshot();
  const auto& cs = system.cache_manager().stats();
  ASSERT_NE(snap.find("cache.result.probes"), nullptr);
  EXPECT_EQ(snap.find("cache.result.probes")->counter, cs.result_lookups);
  EXPECT_EQ(snap.find("cache.l1.result.hits")->counter, cs.result_hits_mem);
  EXPECT_EQ(snap.find("cache.l2.result.hits")->counter, cs.result_hits_ssd);
  EXPECT_EQ(snap.find("cache.list.probes")->counter, cs.list_lookups);
  EXPECT_EQ(snap.find("query.response.count")->counter,
            system.metrics().queries());
  // Hits never exceed probes; the CI smoke asserts the same invariant on
  // the emitted report.
  EXPECT_LE(snap.find("cache.l1.result.hits")->counter +
                snap.find("cache.l2.result.hits")->counter,
            snap.find("cache.result.probes")->counter);
}

#if SSDSE_TRACING
TEST(SystemTelemetryTest, TracerCoversEveryQuery) {
  SearchSystem system(small_system());
  system.run(1'200);
  EXPECT_EQ(system.tracer().queries_traced(), 1'200u);
  // Every query probes the result cache and its trace total matches the
  // simulated response distribution.
  EXPECT_EQ(system.tracer().stage_stats(TraceStage::kResultProbe).count(),
            1'200u);
  EXPECT_GT(system.tracer().stage_stats(TraceStage::kDaatScore).count(), 0u);
}

TEST(SystemTelemetryTest, SetTracingFalseStopsRecording) {
  SearchSystem system(small_system());
  system.set_tracing(false);
  system.run(500);
  EXPECT_EQ(system.tracer().queries_traced(), 0u);
  EXPECT_EQ(system.metrics().queries(), 500u);  // metrics unaffected
}
#endif

TEST(SystemTelemetryTest, RunReportRendersValidSkeleton) {
  SearchSystem system(small_system());
  system.run(1'000);
  const std::string json = render_run_report(system, "unit");
  // Spot-check the schema markers the validator keys on. Full schema
  // validation happens in CI via scripts/check_bench_json.py.
  EXPECT_NE(json.find(R"("report":"telemetry")"), std::string::npos);
  EXPECT_NE(json.find(R"("schema_version":1)"), std::string::npos);
  EXPECT_NE(json.find(R"("run":"unit")"), std::string::npos);
  EXPECT_NE(json.find(R"("queries":1000)"), std::string::npos);
  EXPECT_NE(json.find(R"("situations":[)"), std::string::npos);
  EXPECT_NE(json.find(R"("key":"s9")"), std::string::npos);
  EXPECT_NE(json.find(R"("cache":{)"), std::string::npos);
  EXPECT_NE(json.find(R"("metrics":{)"), std::string::npos);
  // Balanced braces (cheap structural sanity without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ClusterTelemetryTest, SnapshotSumsShardCounters) {
  ClusterConfig cfg;
  cfg.num_shards = 3;
  cfg.total_docs = 300'000;
  cfg.shard_template.set_memory_budget(4 * MiB);
  cfg.shard_template.training_queries = 500;
  SearchCluster cluster(cfg);
  cluster.run(600);
  const auto merged = cluster.telemetry_snapshot();
  std::uint64_t probes = 0;
  for (std::uint32_t s = 0; s < cluster.num_shards(); ++s) {
    probes += cluster.shard(s).cache_manager().stats().result_lookups;
  }
  ASSERT_NE(merged.find("cache.result.probes"), nullptr);
  EXPECT_EQ(merged.find("cache.result.probes")->counter, probes);
  // Gauges carry one sample per shard.
  ASSERT_NE(merged.find("cache.result.hit_ratio"), nullptr);
  EXPECT_EQ(merged.find("cache.result.hit_ratio")->gauge.count(), 3u);
}

}  // namespace
}  // namespace ssdse
