#include <vector>

#include <gtest/gtest.h>

#include "src/cache/ssd_result_cache.hpp"

namespace ssdse {
namespace {

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.nand.num_blocks = 128;
  cfg.nand.pages_per_block = 64;  // real 128 KiB blocks: 6 slots per RB
  return cfg;
}

CachedResult cached(QueryId qid, std::uint64_t freq = 1) {
  CachedResult c;
  c.entry.query = qid;
  c.entry.docs = {{DocId{static_cast<std::uint32_t>(qid.raw())}, 1.0f}};
  c.freq = freq;
  return c;
}

std::vector<CachedResult> group(QueryId first, std::uint32_t n) {
  std::vector<CachedResult> g;
  for (QueryId q = first; q < first + n; ++q) g.push_back(cached(q));
  return g;
}

class SsdResultCacheTest : public ::testing::Test {
 protected:
  SsdResultCacheTest() : ssd_(small_ssd()), file_(ssd_, 0, 8),
                         cache_(file_, /*W=*/2) {}
  Ssd ssd_;
  SsdCacheFile file_;
  SsdResultCache cache_;
};

TEST_F(SsdResultCacheTest, SixSlotsPerRb) {
  EXPECT_EQ(cache_.results_per_rb(), 6u);
}

TEST_F(SsdResultCacheTest, InsertThenLookup) {
  auto g = group(QueryId{10}, 6);
  const Micros t = cache_.insert_rb(g);
  EXPECT_GT(t.value(), 0.0);
  EXPECT_EQ(cache_.entry_count(), 6u);
  std::uint64_t freq = 0;
  Micros rt = micros(0);
  const ResultEntry* e = cache_.lookup(QueryId{12}, freq, rt);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->query.raw(), 12u);
  EXPECT_EQ(freq, 2u);  // admission freq 1 + this hit
  EXPECT_GT(rt.value(), 0.0);
  EXPECT_EQ(cache_.lookup(QueryId{999}, freq, rt), nullptr);
}

TEST_F(SsdResultCacheTest, HitMarksBlockReplaceable) {
  auto g = group(QueryId{0}, 6);
  (void)cache_.insert_rb(g);
  std::uint64_t freq;
  Micros t = micros(0);
  cache_.lookup(QueryId{3}, freq, t);
  EXPECT_EQ(file_.replaceable_count(), 1u);
  // Second hit on the same RB does not double count.
  cache_.lookup(QueryId{4}, freq, t);
  EXPECT_EQ(file_.replaceable_count(), 1u);
}

TEST_F(SsdResultCacheTest, ResurrectCancelsRewrite) {
  auto g = group(QueryId{0}, 6);
  (void)cache_.insert_rb(g);
  std::uint64_t freq;
  Micros t = micros(0);
  cache_.lookup(QueryId{2}, freq, t);  // slot now memory-resident
  EXPECT_TRUE(cache_.resurrect(QueryId{2}));
  EXPECT_EQ(file_.replaceable_count(), 0u);  // block normal again
  // A slot that was never read back cannot be resurrected.
  EXPECT_FALSE(cache_.resurrect(QueryId{3}));
  EXPECT_FALSE(cache_.resurrect(QueryId{999}));
  EXPECT_EQ(cache_.stats().resurrections, 1u);
}

TEST_F(SsdResultCacheTest, VictimIsMaxIrenInWindow) {
  // Fill all 8 RBs.
  for (QueryId base{}; base < QueryId{48}; base = base + 6) {
    auto g = group(base, 6);
    (void)cache_.insert_rb(g);
  }
  auto g2 = group(QueryId{100}, 6);
  (void)cache_.insert_rb(g2);  // 8 blocks total in the region: one must go
  // Read back 3 entries of the second-oldest RB (queries 6..11) to give
  // it the largest IREN.
  std::uint64_t freq;
  Micros t = micros(0);
  // (Re-fill state: insert_rb above already evicted one RB. Rebuild a
  // clean scenario instead.)
  SsdCacheFile file2(ssd_, 8 * 64, 4);
  SsdResultCache cache2(file2, /*W=*/2);
  for (QueryId base{}; base < QueryId{24}; base = base + 6) {
    auto g3 = group(base, 6);
    (void)cache2.insert_rb(g3);
  }
  // LRU order of RBs (old->new): [0..5], [6..11], [12..17], [18..23].
  // Window W=2 covers the two oldest. Give the second-oldest more IREN.
  cache2.lookup(QueryId{6}, freq, t);
  cache2.lookup(QueryId{7}, freq, t);
  // Insert a new RB: victim must be the RB holding 6..11.
  auto g4 = group(QueryId{200}, 6);
  (void)cache2.insert_rb(g4);
  const ResultEntry* survivor = cache2.lookup(QueryId{0}, freq, t);
  EXPECT_NE(survivor, nullptr);  // oldest RB survived (lower IREN)
  EXPECT_EQ(cache2.lookup(QueryId{8}, freq, t), nullptr);  // dropped with its RB
  EXPECT_GT(cache2.stats().entries_dropped_by_overwrite, 0u);
}

TEST_F(SsdResultCacheTest, RewriteInvalidatesOldSlot) {
  auto g = group(QueryId{0}, 6);
  (void)cache_.insert_rb(g);
  // Re-insert query 0 in a later RB; old slot must be invalidated, and
  // the lookup must find the new copy.
  auto g2 = group(QueryId{0}, 1);
  (void)cache_.insert_rb(g2);
  std::uint64_t freq;
  Micros t = micros(0);
  EXPECT_NE(cache_.lookup(QueryId{0}, freq, t), nullptr);
  EXPECT_EQ(cache_.entry_count(), 6u);  // 5 from first RB + 1 rewritten
}

TEST_F(SsdResultCacheTest, PartialGroupsSupported) {
  auto g = group(QueryId{0}, 3);
  (void)cache_.insert_rb(g);
  EXPECT_EQ(cache_.entry_count(), 3u);
  std::uint64_t freq;
  Micros t = micros(0);
  EXPECT_NE(cache_.lookup(QueryId{1}, freq, t), nullptr);
}

TEST_F(SsdResultCacheTest, StaticPreloadPinnedAndHit) {
  std::vector<CachedResult> hot;
  for (QueryId q = QueryId{500}; q < QueryId{512}; ++q) hot.push_back(cached(q, 10));
  (void)cache_.preload_static(hot);
  EXPECT_TRUE(cache_.is_static(QueryId{505}));
  EXPECT_FALSE(cache_.is_static(QueryId{5}));
  std::uint64_t freq;
  Micros t = micros(0);
  const ResultEntry* e = cache_.lookup(QueryId{505}, freq, t);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(freq, 11u);
  // Static blocks never become replaceable on hits.
  EXPECT_EQ(file_.replaceable_count(), 0u);
}

TEST_F(SsdResultCacheTest, StaticSurvivesDynamicChurn) {
  std::vector<CachedResult> hot;
  for (QueryId q = QueryId{500}; q < QueryId{506}; ++q) hot.push_back(cached(q, 10));
  (void)cache_.preload_static(hot);
  // Churn far more dynamic RBs than the region holds.
  for (QueryId base{}; base < QueryId{600}; base = base + 6) {
    auto g = group(base, 6);
    (void)cache_.insert_rb(g);
  }
  std::uint64_t freq;
  Micros t = micros(0);
  EXPECT_NE(cache_.lookup(QueryId{503}, freq, t), nullptr);
}

TEST_F(SsdResultCacheTest, StatsCountWrites) {
  auto g = group(QueryId{0}, 6);
  (void)cache_.insert_rb(g);
  EXPECT_EQ(cache_.stats().rb_writes, 1u);
  EXPECT_EQ(cache_.stats().entries_written, 6u);
}

}  // namespace
}  // namespace ssdse
