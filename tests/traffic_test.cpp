#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/telemetry/slo.hpp"
#include "src/telemetry/tracer.hpp"
#include "src/telemetry/windowed.hpp"
#include "src/workload/arrival.hpp"
#include "src/workload/query_log.hpp"

namespace ssdse {
namespace {

using telemetry::SloSpec;
using telemetry::SloState;
using telemetry::SloTracker;
using telemetry::WindowedCounter;
using telemetry::WindowedSeries;
using telemetry::window_index;

// --- Windowed telemetry -------------------------------------------------

TEST(WindowedTest, IndexRolloverAtExactBucketBoundary) {
  // A sample landing exactly on k * width belongs to window k, not k-1:
  // windows are [k*width, (k+1)*width).
  EXPECT_EQ(window_index(micros(0), kSecond), 0u);
  EXPECT_EQ(window_index(kSecond - micros(1), kSecond), 0u);
  EXPECT_EQ(window_index(kSecond, kSecond), 1u);
  EXPECT_EQ(window_index(2 * kSecond, kSecond), 2u);
  EXPECT_EQ(window_index(2 * kSecond + micros(1), kSecond), 2u);
  // Negative simulated time clamps to window 0 (no negative indices).
  EXPECT_EQ(window_index(micros(-5.0), kSecond), 0u);
}

TEST(WindowedTest, SeriesRolloverKeepsWindowsDisjoint) {
  WindowedSeries s(kSecond);
  s.add(kSecond - micros(1), 10.0);  // last instant of window 0
  s.add(kSecond, 20.0);      // first instant of window 1
  s.add(kSecond + micros(1), 30.0);
  ASSERT_NE(s.cell(0), nullptr);
  ASSERT_NE(s.cell(1), nullptr);
  EXPECT_EQ(s.cell(0)->hist.count(), 1u);
  EXPECT_EQ(s.cell(1)->hist.count(), 2u);
  EXPECT_EQ(s.total(), 3u);
  EXPECT_EQ(s.last_index(), 1u);
}

TEST(WindowedTest, OutOfOrderCompletionsStaySorted) {
  // Completions can land out of window order (a long query started in
  // window 0 finishes after a short one started in window 1).
  WindowedSeries s(kSecond);
  s.add(3 * kSecond, 1.0);
  s.add(Micros{}, 2.0);
  s.add(kSecond, 3.0);
  const auto& cells = s.cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      cells.begin(), cells.end(),
      [](const auto& a, const auto& b) { return a.index < b.index; }));
  EXPECT_EQ(s.last_index(), 3u);
}

TEST(WindowedTest, EmptyWindowHasNoCellAndZeroQuantile) {
  WindowedSeries s(kSecond);
  s.add(Micros{}, 5.0);
  s.add(2 * kSecond, 7.0);  // window 1 never sees a sample
  EXPECT_EQ(s.cell(1), nullptr);
  // Convention: an empty window's quantiles are 0 (matching
  // LatencyHistogram::quantile on an empty histogram).
  LatencyHistogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(0.99), 0.0);
}

TEST(WindowedTest, MergePartiallyFilledShards) {
  // Shard A saw windows {0, 1}; shard B saw {1, 2}. The merged series
  // must equal the union stream: disjoint windows copied, the shared
  // window combined bucket-exactly.
  WindowedSeries a(kSecond), b(kSecond);
  a.add(Micros{}, 100.0);
  a.add(kSecond, 200.0);
  b.add(kSecond, 400.0);
  b.add(2 * kSecond, 800.0);

  WindowedSeries expected(kSecond);
  expected.add(Micros{}, 100.0);
  expected.add(kSecond, 200.0);
  expected.add(kSecond, 400.0);
  expected.add(2 * kSecond, 800.0);

  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  ASSERT_EQ(a.cells().size(), 3u);
  for (std::uint64_t w = 0; w <= 2; ++w) {
    ASSERT_NE(a.cell(w), nullptr) << "window " << w;
    ASSERT_NE(expected.cell(w), nullptr);
    EXPECT_EQ(a.cell(w)->hist.count(), expected.cell(w)->hist.count());
    EXPECT_EQ(a.cell(w)->hist.quantile(0.5),
              expected.cell(w)->hist.quantile(0.5));
    EXPECT_EQ(a.cell(w)->hist.quantile(0.99),
              expected.cell(w)->hist.quantile(0.99));
  }
}

TEST(WindowedTest, MergeWidthMismatchThrows) {
  WindowedSeries a(kSecond), b(kSecond / 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  WindowedCounter ca(kSecond), cb(2 * kSecond);
  EXPECT_THROW(ca.merge(cb), std::invalid_argument);
}

TEST(WindowedTest, CounterMergeAndAbsentWindows) {
  WindowedCounter a(kSecond), b(kSecond);
  a.add(micros(0.0), 3);
  a.add(2 * kSecond, 1);
  b.add(2 * kSecond, 4);
  b.add(3 * kSecond, 2);
  a.merge(b);
  EXPECT_EQ(a.at(0), 3u);
  EXPECT_EQ(a.at(1), 0u);  // never incremented
  EXPECT_EQ(a.at(2), 5u);
  EXPECT_EQ(a.at(3), 2u);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_EQ(a.last_index(), 3u);
}

// --- SLO tracking -------------------------------------------------------

TEST(SloTest, ExactlyOnThresholdIsGood) {
  SloSpec spec;
  spec.threshold_us = 1000.0;
  EXPECT_TRUE(spec.good(micros(999.9)));
  EXPECT_TRUE(spec.good(micros(1000.0)));  // equality meets the SLO
  EXPECT_FALSE(spec.good(micros(1000.1)));
}

TEST(SloTest, BudgetExactlySpentIsWarnNotBreach) {
  // q = 0.99 over 100-event windows: the budget is exactly 1 bad event
  // per window. Landing exactly on budget means burn_slow == 1.0 —
  // spent, not overspent — which must evaluate to kWarn, never kBreach.
  SloSpec spec;
  spec.quantile = 0.99;
  spec.threshold_us = 1000.0;
  spec.compliance_windows = 10;
  SloTracker t(spec);
  for (int w = 0; w < 20; ++w) t.close_window(/*good=*/99, /*bad=*/1);
  // (1-q) is not exactly representable; the tracker absorbs the noise.
  EXPECT_NEAR(t.burn_slow(), 1.0, 1e-9);
  EXPECT_NEAR(t.budget_events(), 10.0, 1e-9);  // (1-q) * 1000 trailing
  EXPECT_EQ(t.trailing_events(), 1000u);
  EXPECT_EQ(t.trailing_bad(), 10u);
  EXPECT_EQ(t.state(), SloState::kWarn);
  EXPECT_EQ(t.breach_windows(), 0u);
  EXPECT_EQ(t.first_breach_window(), -1);

  // q = 0.999 is the adversarial rounding direction: 1-q rounds *down*
  // (0.0009999...8), so exactly-on-budget naively computes burn_slow a
  // hair above 1.0. The tracker's epsilon must still call this warn.
  SloSpec spec3;
  spec3.quantile = 0.999;
  spec3.threshold_us = 1000.0;
  spec3.compliance_windows = 10;
  SloTracker t3(spec3);
  for (int w = 0; w < 20; ++w) t3.close_window(/*good=*/999, /*bad=*/1);
  EXPECT_NEAR(t3.burn_slow(), 1.0, 1e-9);
  EXPECT_EQ(t3.state(), SloState::kWarn);
  EXPECT_EQ(t3.breach_windows(), 0u);
}

TEST(SloTest, OneEventOverBudgetBreaches) {
  SloSpec spec;
  spec.quantile = 0.99;
  spec.compliance_windows = 10;
  SloTracker t(spec);
  for (int w = 0; w < 9; ++w) t.close_window(99, 1);
  EXPECT_NE(t.state(), SloState::kBreach);
  t.close_window(98, 2);  // trailing bad 11 > budget 10
  EXPECT_GT(t.burn_slow(), 1.0);
  EXPECT_EQ(t.state(), SloState::kBreach);
  EXPECT_EQ(t.breach_windows(), 1u);
  EXPECT_EQ(t.first_breach_window(), 9);
}

TEST(SloTest, FastBurnSpikesBreachImmediately) {
  // One catastrophic window (half the events bad against a 1% budget)
  // pages immediately even though the trailing average is still fine.
  SloSpec spec;
  spec.quantile = 0.99;
  spec.compliance_windows = 100;
  SloTracker t(spec);
  for (int w = 0; w < 50; ++w) t.close_window(100, 0);
  EXPECT_EQ(t.state(), SloState::kOk);
  t.close_window(50, 50);  // burn_fast = 0.5 / 0.01 = 50 >= 14.4
  EXPECT_GE(t.burn_fast(), spec.fast_burn);
  EXPECT_EQ(t.state(), SloState::kBreach);
  EXPECT_GE(t.max_burn_fast(), 50.0 - 1e-9);
}

TEST(SloTest, RecoveryAndTransitionCount) {
  SloSpec spec;
  spec.quantile = 0.9;  // 10% budget
  spec.compliance_windows = 4;
  SloTracker t(spec);
  t.close_window(100, 0);      // ok
  t.close_window(50, 50);      // breach (fast burn)
  t.close_window(100, 0);      // trailing 50/250 = 20% > 10% -> breach
  t.close_window(100, 0);      // trailing 50/350 ~ 14% -> breach
  t.close_window(100, 0);      // trailing 50/400 = 12.5% -> breach
  t.close_window(100, 0);      // bad window evicted (cap 4) -> ok
  EXPECT_EQ(t.state(), SloState::kOk);
  EXPECT_GE(t.transitions(), 2u);  // ok->breach, breach->ok at least
  EXPECT_EQ(t.windows(), 6u);
}

TEST(SloTest, InvalidSpecThrows) {
  SloSpec bad;
  bad.quantile = 1.0;
  EXPECT_THROW(SloTracker t(bad), std::invalid_argument);
  bad.quantile = 0.0;
  EXPECT_THROW(SloTracker t(bad), std::invalid_argument);
  bad.quantile = 0.99;
  bad.compliance_windows = 0;
  EXPECT_THROW(SloTracker t(bad), std::invalid_argument);
}

// --- Arrival process ----------------------------------------------------

QueryLogConfig small_log() {
  QueryLogConfig cfg;
  cfg.distinct_queries = 10'000;
  cfg.vocab_size = 10'000;
  cfg.seed = 17;
  return cfg;
}

TEST(ArrivalTest, DeterministicAndStrictlyIncreasing) {
  ArrivalConfig cfg;
  cfg.base_qps = 500.0;
  cfg.diurnal_amplitude = 0.2;
  cfg.diurnal_period = 10 * kSecond;
  cfg.flash_crowds = {{2 * kSecond, kSecond, 3.0}};
  cfg.outlier_probability = 0.01;
  cfg.seed = 42;

  QueryLogGenerator g1(small_log()), g2(small_log());
  ArrivalProcess a1(cfg, g1), a2(cfg, g2);
  Micros prev = micros(-1.0);
  for (int i = 0; i < 2000; ++i) {
    const auto x = a1.next();
    const auto y = a2.next();
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.query.id, y.query.id);
    EXPECT_EQ(x.outlier, y.outlier);
    EXPECT_GT(x.time, prev);
    prev = x.time;
  }
  EXPECT_EQ(a1.generated(), 2000u);
}

TEST(ArrivalTest, RateCurveRespectsCrowdsAndPeakEnvelope) {
  ArrivalConfig cfg;
  cfg.base_qps = 100.0;
  cfg.diurnal_amplitude = 0.5;
  cfg.diurnal_period = 20 * kSecond;
  cfg.flash_crowds = {{5 * kSecond, 2 * kSecond, 4.0}};
  QueryLogGenerator gen(small_log());
  ArrivalProcess a(cfg, gen);
  // Inside the crowd the rate is multiplied; outside it is not.
  EXPECT_GT(a.rate_at(6 * kSecond), 2.0 * a.rate_at(15 * kSecond));
  // The thinning envelope dominates the instantaneous rate everywhere.
  for (Micros t = micros(0); t < 30 * kSecond; t += kSecond / 4) {
    EXPECT_LE(a.rate_at(t), a.peak_qps() + 1e-9) << "t=" << t.value();
  }
}

TEST(ArrivalTest, OutliersAreFreshRareTermQueries) {
  ArrivalConfig cfg;
  cfg.base_qps = 100.0;
  cfg.outlier_probability = 1.0;  // every arrival is a query of death
  cfg.outlier_terms = 8;
  QueryLogGenerator gen(small_log());
  ArrivalProcess a(cfg, gen);
  std::vector<QueryId> ids;
  for (int i = 0; i < 50; ++i) {
    const auto arr = a.next();
    EXPECT_TRUE(arr.outlier);
    EXPECT_GE(arr.query.id, QueryId{1ull << 62});  // never collides with log ids
    EXPECT_GE(arr.query.terms.size(), 1u);
    EXPECT_LE(arr.query.terms.size(), 8u);
    for (TermId t : arr.query.terms) {
      EXPECT_GE(t, TermId{small_log().vocab_size / 2});  // rare half of the vocab
    }
    ids.push_back(arr.query.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "outlier ids must never repeat (they must defeat the result cache)";
  EXPECT_EQ(a.outliers(), 50u);
}

// --- run_traffic with a stub target ------------------------------------

/// Deterministic stub: fixed service time, optionally with a synthetic
/// trace attributing part of the service time to one stage.
class StubTarget : public TrafficTarget {
 public:
  explicit StubTarget(Micros service, bool traced = false)
      : service_(service), traced_(traced) {}

  Micros serve(const Query& q) override {
    if (traced_) {
      trace_ = telemetry::QueryTrace{};
      trace_.query = q.id;
      trace_.total = service_;
      const auto hdd = static_cast<std::size_t>(
          telemetry::TraceStage::kListFetchHdd);
      trace_.stage_us[hdd] = service_ * 0.75;
      trace_.touched = 1u << hdd;
    }
    return service_;
  }

  [[nodiscard]] const telemetry::QueryTrace* last_trace() const override {
    return traced_ ? &trace_ : nullptr;
  }

 private:
  Micros service_;
  bool traced_;
  telemetry::QueryTrace trace_;
};

TrafficConfig stub_cfg(double qps, Micros service_ignored = Micros{}) {
  (void)service_ignored;
  TrafficConfig cfg;
  cfg.arrival.base_qps = qps;
  cfg.arrival.seed = 99;
  cfg.offered = 3000;
  cfg.servers = 1;
  cfg.queue_capacity = 16;
  cfg.window = kSecond;
  SloSpec slo;
  slo.name = "p99_latency";
  slo.quantile = 0.99;
  slo.threshold_us = (50 * kMillisecond).value();
  cfg.slos = {slo};
  return cfg;
}

TEST(TrafficTest, ConservationUnderOverload) {
  // Offered 2x the stub's capacity through a 16-slot queue: the harness
  // must shed, and every arrival must be accounted for exactly once.
  StubTarget target(/*service=*/10 * kMillisecond);  // capacity 100 q/s
  QueryLogGenerator gen(small_log());
  const auto r = run_traffic(target, gen, stub_cfg(/*qps=*/200.0));
  EXPECT_EQ(r.offered, 3000u);
  EXPECT_EQ(r.served + r.shed, r.offered);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.response_hist.count(), r.served);
  EXPECT_EQ(r.wait_hist.count(), r.served);
  EXPECT_EQ(r.offered_windows.total(), r.offered);
  EXPECT_EQ(r.shed_windows.total(), r.shed);
  EXPECT_EQ(r.response_windows.total(), r.served);
  // Saturated single server with a full queue: the tail is queue time.
  EXPECT_EQ(r.guilty_stage, "queue_wait");
  EXPECT_TRUE(r.breached());  // shed storm blows the 1% budget
}

TEST(TrafficTest, UnderloadServesEverythingQuietly) {
  StubTarget target(/*service=*/1 * kMillisecond);  // capacity 1000 q/s
  QueryLogGenerator gen(small_log());
  const auto r = run_traffic(target, gen, stub_cfg(/*qps=*/100.0));
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.served, r.offered);
  EXPECT_FALSE(r.breached());
  for (const auto& s : r.slo) {
    EXPECT_EQ(s.state, SloState::kOk) << s.spec.name;
    EXPECT_EQ(s.breach_windows, 0u);
  }
  // Untraced stub: service time lands in the "other" pseudo-stage.
  EXPECT_GT(r.stage_counts[kAttrOther], 0u);
}

TEST(TrafficTest, TracedTargetAttributesStages) {
  StubTarget target(/*service=*/1 * kMillisecond, /*traced=*/true);
  QueryLogGenerator gen(small_log());
  // Two servers at 5% utilization: queueing delay is essentially never
  // observed, so attribution must name the traced stage, not queue_wait.
  auto cfg = stub_cfg(/*qps=*/100.0);
  cfg.servers = 2;
  const auto r = run_traffic(target, gen, cfg);
  const auto hdd =
      static_cast<std::size_t>(telemetry::TraceStage::kListFetchHdd);
  EXPECT_EQ(r.stage_counts[hdd], r.served);
  // 75% traced to HDD fetch, 25% untraced: at low load the guilty
  // stage is the HDD fetch, not queue_wait.
  EXPECT_EQ(r.guilty_stage, "list_fetch_hdd");
  ASSERT_FALSE(r.worst.empty());
  EXPECT_LE(r.worst.size(), stub_cfg(100.0).worst_n);
  // Reservoir sorted by descending response.
  EXPECT_TRUE(std::is_sorted(r.worst.begin(), r.worst.end(),
                             [](const TailSample& a, const TailSample& b) {
                               return a.response > b.response;
                             }));
  for (const auto& w : r.worst) {
    EXPECT_NEAR(w.stage_us[hdd].value(), 0.75 * w.service.value(), 1e-6);
    EXPECT_NEAR(w.untraced.value(), 0.25 * w.service.value(), 1e-6);
    EXPECT_EQ(w.response, w.wait + w.service);
  }
}

TEST(TrafficTest, DeterministicFingerprint) {
  StubTarget t1(5 * kMillisecond), t2(5 * kMillisecond);
  QueryLogGenerator g1(small_log()), g2(small_log());
  const auto cfg = stub_cfg(150.0);
  const auto r1 = run_traffic(t1, g1, cfg);
  const auto r2 = run_traffic(t2, g2, cfg);
  EXPECT_EQ(r1.series_fingerprint(), r2.series_fingerprint());
  EXPECT_EQ(r1.served, r2.served);
  EXPECT_EQ(r1.shed, r2.shed);

  // A different arrival seed must perturb the series.
  auto cfg2 = cfg;
  cfg2.arrival.seed = 100;
  StubTarget t3(5 * kMillisecond);
  QueryLogGenerator g3(small_log());
  const auto r3 = run_traffic(t3, g3, cfg2);
  EXPECT_NE(r1.series_fingerprint(), r3.series_fingerprint());
}

TEST(TrafficTest, MoreServersDrainTheQueue) {
  const auto cfg1 = stub_cfg(300.0);
  auto cfg4 = cfg1;
  cfg4.servers = 4;
  StubTarget t1(10 * kMillisecond), t4(10 * kMillisecond);
  QueryLogGenerator g1(small_log()), g4(small_log());
  const auto r1 = run_traffic(t1, g1, cfg1);  // 3x one server's capacity
  const auto r4 = run_traffic(t4, g4, cfg4);  // 0.75x four servers'
  EXPECT_GT(r1.shed, 0u);
  EXPECT_EQ(r4.shed, 0u);
  EXPECT_LT(r4.wait_hist.quantile(0.99), r1.wait_hist.quantile(0.99));
}

// --- Coverage-aware SLOs (DESIGN.md §15) -------------------------------

/// Stub reporting a fixed coverage for every serve(): models a cluster
/// that keeps dropping the same shard.
class PartialCoverageTarget : public TrafficTarget {
 public:
  PartialCoverageTarget(Micros service, double coverage)
      : service_(service), coverage_(coverage) {}
  Micros serve(const Query&) override { return service_; }
  [[nodiscard]] double last_coverage() const override { return coverage_; }

 private:
  Micros service_;
  double coverage_;
};

TEST(TrafficTest, CoverageBelowFloorBurnsErrorBudget) {
  // Fast responses with 50% coverage: without a floor they count as
  // good; with a 0.75 floor every served query is a bad event and the
  // budget burns to breach.
  QueryLogGenerator gen(small_log());
  auto cfg = stub_cfg(/*qps=*/100.0);
  PartialCoverageTarget half(1 * kMillisecond, 0.5);
  const auto lenient = run_traffic(half, gen, cfg);
  EXPECT_FALSE(lenient.breached());
  EXPECT_EQ(lenient.partial, lenient.served);

  cfg.slos[0].coverage_floor = 0.75;
  QueryLogGenerator gen2(small_log());
  PartialCoverageTarget half2(1 * kMillisecond, 0.5);
  const auto floored = run_traffic(half2, gen2, cfg);
  EXPECT_TRUE(floored.breached());
  ASSERT_EQ(floored.slo.size(), 1u);
  // Every evaluated event is bad (the trailing partial window is
  // excluded from the totals, so bad <= served).
  EXPECT_EQ(floored.slo[0].good, 0u);
  EXPECT_GT(floored.slo[0].bad, 0u);
  EXPECT_LE(floored.slo[0].bad, floored.served);
}

TEST(TrafficTest, CoverageExactlyOnFloorIsGood) {
  // Boundary convention matches exactly-on-threshold latency (PR 8):
  // coverage landing exactly on the floor meets the SLO; a hair below
  // does not.
  SloSpec spec;
  spec.name = "p99_with_coverage";
  spec.quantile = 0.99;
  spec.threshold_us = (50 * kMillisecond).value();
  spec.coverage_floor = 0.75;
  EXPECT_TRUE(spec.good_event(1 * kMillisecond, 0.75));
  EXPECT_FALSE(spec.good_event(1 * kMillisecond,
                               0.75 - 1e-9));
  // The floor never rescues a slow response.
  EXPECT_FALSE(spec.good_event(60 * kMillisecond, 1.0));
  // Floor 0 = the PR 8 behavior: coverage is ignored entirely.
  spec.coverage_floor = 0.0;
  EXPECT_TRUE(spec.good_event(1 * kMillisecond, 0.0));

  // End-to-end: a target that always reports exactly-on-floor coverage
  // never burns budget.
  QueryLogGenerator gen(small_log());
  auto cfg = stub_cfg(/*qps=*/100.0);
  cfg.slos[0].coverage_floor = 0.75;
  PartialCoverageTarget on_floor(1 * kMillisecond, 0.75);
  const auto r = run_traffic(on_floor, gen, cfg);
  EXPECT_FALSE(r.breached());
  ASSERT_EQ(r.slo.size(), 1u);
  EXPECT_EQ(r.slo[0].bad, 0u);
  EXPECT_EQ(r.partial, r.served);  // partial is coverage < 1, floor-agnostic
}

TEST(TrafficTest, AttrStageNamesCoverTheAxis) {
  EXPECT_STREQ(attr_stage_name(kAttrQueueWait), "queue_wait");
  EXPECT_STREQ(attr_stage_name(kAttrOther), "other");
  EXPECT_STREQ(attr_stage_name(static_cast<std::size_t>(
                   telemetry::TraceStage::kListFetchHdd)),
               "list_fetch_hdd");
  for (std::size_t s = 0; s < kNumAttrStages; ++s) {
    EXPECT_NE(attr_stage_name(s), nullptr);
    EXPECT_GT(std::string(attr_stage_name(s)).size(), 0u);
  }
}

}  // namespace
}  // namespace ssdse
