// Reproduction regression suite: the paper's headline *orderings*,
// asserted at reduced scale so a behavioural regression in any layer
// (FTL, cache policy, workload model) fails the test run — not just the
// bench outputs.
#include <gtest/gtest.h>

#include "src/hybrid/search_system.hpp"

namespace ssdse {
namespace {

struct PolicyOutcome {
  double coverage = 0;
  Micros response = micros(0);
  double qps = 0;
  std::uint64_t erases = 0;
  Micros flash_access = micros(0);
};

PolicyOutcome run_policy(CachePolicy policy, Bytes mem_budget = 4 * MiB,
                         std::uint64_t queries = 15'000) {
  // The paper's claims live in the capacity-pressure regime: a 5M-doc
  // shard against a small memory budget (cf. Fig. 14's sweep).
  SystemConfig cfg;
  cfg.set_num_docs(5'000'000);
  cfg.set_memory_budget(mem_budget);
  cfg.cache.policy = policy;
  cfg.training_queries = 3'000;
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  return PolicyOutcome{system.metrics().request_coverage(),
                       system.metrics().mean_response(),
                       system.throughput_qps(),
                       system.cache_ssd()->block_erases(),
                       system.cache_ssd()->mean_flash_access()};
}

class ReproductionTest : public ::testing::Test {
 protected:
  static const PolicyOutcome& lru() {
    static const PolicyOutcome o = run_policy(CachePolicy::kLru);
    return o;
  }
  static const PolicyOutcome& cblru() {
    static const PolicyOutcome o = run_policy(CachePolicy::kCblru);
    return o;
  }
  static const PolicyOutcome& cbslru() {
    static const PolicyOutcome o = run_policy(CachePolicy::kCbslru);
    return o;
  }
};

// Paper Fig. 14(b): hit ratio ordering under capacity pressure.
TEST_F(ReproductionTest, HitRatioOrderingUnderPressure) {
  EXPECT_GT(cblru().coverage, lru().coverage);
  EXPECT_GT(cbslru().coverage, cblru().coverage);
}

// Paper Fig. 17(a): response-time ordering.
TEST_F(ReproductionTest, ResponseTimeOrdering) {
  EXPECT_LT(cbslru().response, lru().response);
  EXPECT_LT(cblru().response, lru().response);
}

// Paper Fig. 17(b): throughput ordering.
TEST_F(ReproductionTest, ThroughputOrdering) {
  EXPECT_GT(cblru().qps, lru().qps);
  EXPECT_GT(cbslru().qps, cblru().qps);
}

// Paper Fig. 19(a): block-erasure ordering — the wear claim.
TEST_F(ReproductionTest, EraseCountOrdering) {
  EXPECT_LT(cblru().erases, lru().erases / 2);
  EXPECT_LE(cbslru().erases, cblru().erases);
}

// Paper Fig. 19(b): flash access time ordering.
TEST_F(ReproductionTest, FlashAccessOrdering) {
  EXPECT_LT(cblru().flash_access, lru().flash_access);
  EXPECT_LT(cbslru().flash_access, lru().flash_access);
}

// Paper Fig. 14(a): RIC > IC and RIC > RC on request coverage, and RC
// saturates while IC keeps growing.
TEST(ReproductionCoverageTest, RicBeatsSingleCaches) {
  auto coverage = [](bool results, bool lists, Bytes budget) {
    SystemConfig cfg;
    cfg.set_num_docs(5'000'000);
    cfg.cache.l2 = false;
    cfg.cache.result_cache = results;
    cfg.cache.list_cache = lists;
    if (results && lists) {
      cfg.set_memory_budget(budget);
      cfg.cache.l2 = false;
    } else if (results) {
      cfg.cache.mem_result_capacity = budget;
    } else {
      cfg.cache.mem_list_capacity = budget;
    }
    cfg.training_queries = 0;
    SearchSystem system(cfg);
    system.run(10'000);
    return system.metrics().request_coverage();
  };
  const Bytes budget = 24 * MiB;
  const double rc = coverage(true, false, budget);
  const double ic = coverage(false, true, budget);
  const double ric = coverage(true, true, budget);
  EXPECT_GT(ric, ic);
  EXPECT_GT(ric, rc);
  // RC saturates faster than IC: quadrupling capacity helps the list
  // cache more than the result cache (paper: "keep RC within bounds").
  const double rc_big = coverage(true, false, 4 * budget);
  const double ic_big = coverage(false, true, 4 * budget);
  EXPECT_LT(rc_big - rc, ic_big - ic);
}

// Paper Table I: time costs strictly tiered memory < SSD < HDD.
TEST(ReproductionSituationTest, TimeCostTiers) {
  SystemConfig cfg;
  cfg.set_num_docs(1'000'000);
  cfg.set_memory_budget(8 * MiB);
  cfg.training_queries = 2'000;
  SearchSystem system(cfg);
  system.run(15'000);
  const auto& m = system.metrics();
  const Micros t1 = m.situation_mean_time(Situation::kS1_ResultMemory);
  const Micros t2 = m.situation_mean_time(Situation::kS2_ResultSsd);
  const Micros t9 = m.situation_mean_time(Situation::kS9_ListsHdd);
  ASSERT_GT(m.situation_count(Situation::kS1_ResultMemory), 0u);
  ASSERT_GT(m.situation_count(Situation::kS2_ResultSsd), 0u);
  ASSERT_GT(m.situation_count(Situation::kS9_ListsHdd), 0u);
  EXPECT_LT(t1 * 2, t2);   // memory result << SSD result
  EXPECT_LT(t2 * 2, t9);   // SSD result << HDD lists
}

// Paper SSVII.C: two-level wins on cost-performance.
TEST(ReproductionCostTest, TwoLevelWinsCostPerformance) {
  auto response = [](Bytes mem, bool l2) {
    SystemConfig cfg;
    cfg.set_num_docs(1'000'000);
    cfg.set_memory_budget(mem);
    cfg.cache.policy = CachePolicy::kCbslru;
    cfg.cache.l2 = l2;
    cfg.training_queries = 2'000;
    SearchSystem system(cfg);
    system.run(10'000);
    return system.metrics().mean_response();
  };
  // Small DRAM + SSD tier vs 4x the DRAM without it: the hybrid must at
  // least match it while costing far less (DRAM $14.5 vs SSD $1.9 / GB).
  const Micros hybrid = response(4 * MiB, true);
  const Micros big_dram = response(16 * MiB, false);
  EXPECT_LT(hybrid, big_dram);
}

}  // namespace
}  // namespace ssdse
