// Cross-scheme FTL tests: block-mapped, hybrid log-block, DFTL, the
// factory, plus a parameterized correctness sweep run against every
// scheme under several workload shapes.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/ftl/block_ftl.hpp"
#include "src/ftl/dftl.hpp"
#include "src/ftl/factory.hpp"
#include "src/ftl/hybrid_ftl.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

NandConfig small_nand(std::uint32_t blocks = 64,
                      std::uint32_t pages_per_block = 16) {
  NandConfig cfg;
  cfg.num_blocks = blocks;
  cfg.pages_per_block = pages_per_block;
  return cfg;
}

// --- BlockFtl ----------------------------------------------------------

TEST(BlockFtlTest, SequentialFillNoMerges) {
  NandArray nand(small_nand());
  BlockFtl ftl(nand);
  for (Lpn p = 0; p < 64; ++p) EXPECT_TRUE(ftl.write(p).ok());
  EXPECT_EQ(ftl.stats().gc_invocations, 0u);
  EXPECT_EQ(nand.stats().block_erases, 0u);
  for (Lpn p = 0; p < 64; ++p) EXPECT_TRUE(ftl.read(p).ok());
}

TEST(BlockFtlTest, OverwriteForcesCopyMerge) {
  NandArray nand(small_nand());
  BlockFtl ftl(nand);
  for (Lpn p = 0; p < 16; ++p) EXPECT_TRUE(ftl.write(p).ok());  // fill block 0
  const auto erases_before = nand.stats().block_erases;
  EXPECT_TRUE(ftl.write(3).ok());  // overwrite -> copy-merge + erase of old block
  EXPECT_EQ(nand.stats().block_erases, erases_before + 1);
  EXPECT_GT(ftl.stats().gc_page_copies, 0u);
  for (Lpn p = 0; p < 16; ++p) EXPECT_TRUE(ftl.read(p).ok());
}

TEST(BlockFtlTest, SkippedOffsetsPadded) {
  NandArray nand(small_nand());
  BlockFtl ftl(nand);
  EXPECT_TRUE(ftl.write(5).ok());  // lbn 0, offset 5: pages 0..4 must be pad-programmed
  EXPECT_EQ(nand.stats().page_programs, 6u);
  EXPECT_TRUE(ftl.read(5).ok());
  // Unwritten neighbours stay unreadable-but-legal.
  EXPECT_TRUE(ftl.read(4).ok());
}

TEST(BlockFtlTest, TrimWholeBlockFreesIt) {
  NandArray nand(small_nand());
  BlockFtl ftl(nand);
  const auto before = ftl.free_blocks();
  EXPECT_TRUE(ftl.write(0).ok());
  EXPECT_TRUE(ftl.write(1).ok());
  EXPECT_EQ(ftl.free_blocks(), before - 1);
  (void)ftl.trim(0);
  (void)ftl.trim(1);
  EXPECT_EQ(ftl.free_blocks(), before);  // erased + returned
}

TEST(BlockFtlTest, RandomChurnKeepsDataIntact) {
  NandArray nand(small_nand());
  BlockFtl ftl(nand);
  Rng rng(21);
  const Lpn n = std::min<Lpn>(ftl.logical_pages(), 256);
  for (int i = 0; i < 3000; ++i) EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
  for (Lpn p = 0; p < n; ++p) EXPECT_TRUE(ftl.read(p).ok());
}

// --- HybridLogFtl ---------------------------------------------------------

HybridFtlConfig hybrid_cfg(std::uint32_t log_blocks = 4) {
  HybridFtlConfig cfg;
  cfg.log_blocks = log_blocks;
  return cfg;
}

TEST(HybridFtlTest, WritesLandInLogWithoutImmediateMerge) {
  NandArray nand(small_nand());
  HybridLogFtl ftl(nand, hybrid_cfg());
  for (Lpn p = 0; p < 10; ++p) EXPECT_TRUE(ftl.write(p).ok());
  EXPECT_EQ(ftl.stats().gc_invocations, 0u);
  for (Lpn p = 0; p < 10; ++p) EXPECT_TRUE(ftl.read(p).ok());
}

TEST(HybridFtlTest, LogExhaustionTriggersFullMerge) {
  NandArray nand(small_nand(64, 8));
  HybridLogFtl ftl(nand, hybrid_cfg(2));
  Rng rng(22);
  const Lpn n = std::min<Lpn>(ftl.logical_pages(), 128);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
  EXPECT_GT(ftl.stats().gc_invocations, 0u);
  EXPECT_LE(ftl.active_log_blocks(), 2u);
}

TEST(HybridFtlTest, NewestVersionWinsAfterMerges) {
  NandArray nand(small_nand(64, 8));
  HybridLogFtl ftl(nand, hybrid_cfg(2));
  // Hammer one page among scattered writes; its read must always verify
  // the latest version (internal tag check).
  Rng rng(23);
  const Lpn n = std::min<Lpn>(ftl.logical_pages(), 64);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(ftl.write(7).ok());
    EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
    EXPECT_TRUE(ftl.read(7).ok());
  }
}

TEST(HybridFtlTest, TrimDropsLogAndDataCopies) {
  NandArray nand(small_nand());
  HybridLogFtl ftl(nand, hybrid_cfg());
  EXPECT_TRUE(ftl.write(3).ok());
  (void)ftl.trim(3);
  const Micros t = ftl.read(3).latency;
  EXPECT_LT(t, nand.config().page_read);  // unmapped read
}

// --- Dftl -------------------------------------------------------------------

DftlConfig dftl_cfg(std::size_t cmt = 64) {
  DftlConfig cfg;
  cfg.cmt_entries = cmt;
  return cfg;
}

TEST(DftlTest, CmtHitsOnRepeatedAccess) {
  NandArray nand(small_nand());
  Dftl ftl(nand, dftl_cfg());
  EXPECT_TRUE(ftl.write(1).ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ftl.read(1).ok());
  EXPECT_GT(ftl.dftl_stats().cmt_hits, 8u);
  EXPECT_GT(ftl.dftl_stats().hit_ratio(), 0.8);
}

TEST(DftlTest, ColdMissesCostTranslationReads) {
  NandArray nand(small_nand(256, 16));
  Dftl ftl(nand, dftl_cfg(16));
  // Touch many distinct pages: each miss charges a translation read.
  for (Lpn p = 0; p < 200; ++p) EXPECT_TRUE(ftl.write(p * 7 % ftl.logical_pages()).ok());
  EXPECT_GT(ftl.dftl_stats().tpage_reads, 100u);
}

TEST(DftlTest, DirtyEvictionsWriteTranslationPages) {
  NandArray nand(small_nand(256, 16));
  Dftl ftl(nand, dftl_cfg(8));
  for (Lpn p = 0; p < 100; ++p) EXPECT_TRUE(ftl.write(p).ok());  // all dirtying, tiny CMT
  EXPECT_GT(ftl.dftl_stats().tpage_writes, 50u);
}

TEST(DftlTest, MissCostsMoreThanHit) {
  NandArray nand(small_nand(256, 16));
  Dftl ftl(nand, dftl_cfg(4));
  for (Lpn p = 0; p < 64; ++p) EXPECT_TRUE(ftl.write(p).ok());
  const Micros hit = [&] {
    EXPECT_TRUE(ftl.read(63).ok());          // load into CMT
    return ftl.read(63).latency;  // now a CMT hit
  }();
  const Micros miss = ftl.read(0).latency;  // long evicted
  EXPECT_GT(miss, hit);
}

TEST(DftlTest, DataIntegrityUnderChurn) {
  NandArray nand(small_nand(128, 8));
  Dftl ftl(nand, dftl_cfg(32));
  Rng rng(24);
  const Lpn n = std::min<Lpn>(ftl.logical_pages(), 256);
  for (int i = 0; i < 5000; ++i) EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
  for (Lpn p = 0; p < n; ++p) EXPECT_TRUE(ftl.read(p).ok());
}

// --- Factory -----------------------------------------------------------------

TEST(FtlFactoryTest, MakesEverySchemeAndRejectsUnknown) {
  for (const auto& name : ftl_scheme_names()) {
    NandArray nand(small_nand());
    auto ftl = make_ftl(name, nand);
    ASSERT_NE(ftl, nullptr) << name;
    EXPECT_EQ(ftl->name(), name);
    EXPECT_GT(ftl->logical_pages(), 0u);
  }
  NandArray nand(small_nand());
  EXPECT_THROW(make_ftl("bogus", nand), std::invalid_argument);
}

// --- Parameterized correctness sweep over all schemes -----------------------

struct SweepCase {
  std::string scheme;
  int workload;  // 0 sequential, 1 random, 2 hot/cold, 3 write/trim mix
};

class FtlSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FtlSweepTest, IntegrityAndAccountingInvariants) {
  const auto& param = GetParam();
  NandArray nand(small_nand(96, 8));
  auto ftl = make_ftl(param.scheme, nand);
  Rng rng(1000 + param.workload);
  const Lpn n = std::min<Lpn>(ftl->logical_pages(), 256);

  for (int i = 0; i < 4000; ++i) {
    Lpn p;
    switch (param.workload) {
      case 0: p = static_cast<Lpn>(i) % n; break;
      case 1: p = rng.next_below(n); break;
      case 2: p = rng.chance(0.8) ? rng.next_below(n / 10 + 1)
                                  : rng.next_below(n); break;
      default: p = rng.next_below(n); break;
    }
    EXPECT_TRUE(ftl->write(p).ok());
    if (param.workload == 3 && rng.chance(0.3)) {
      (void)ftl->trim(rng.next_below(n));
    }
    if (rng.chance(0.2)) {
      EXPECT_TRUE(ftl->read(rng.next_below(n)).ok());  // self-verifying
    }
  }
  // Full read-back: every page either verifies or is legally unmapped.
  for (Lpn p = 0; p < n; ++p) EXPECT_TRUE(ftl->read(p).ok());

  // Accounting invariants.
  const auto& s = ftl->stats();
  EXPECT_EQ(s.host_writes, 4000u);
  EXPECT_GT(s.host_busy.value(), 0.0);
  EXPECT_GE(nand.stats().page_programs, s.host_writes);
  if (s.host_writes > 0) {
    EXPECT_GE(s.write_amplification(nand.stats()), 1.0);
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto& scheme : ftl_scheme_names()) {
    for (int w = 0; w < 4; ++w) cases.push_back({scheme, w});
  }
  return cases;
}

std::string sweep_case_name(
    const ::testing::TestParamInfo<SweepCase>& info) {
  static const char* const kNames[] = {"sequential", "random", "hotcold",
                                       "trimmix"};
  std::string s = info.param.scheme + "_" + kNames[info.param.workload];
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllSchemesAllWorkloads, FtlSweepTest,
                         ::testing::ValuesIn(sweep_cases()),
                         sweep_case_name);

}  // namespace
}  // namespace ssdse
