// DAAT conjunctive processing tests: advance() semantics, skip usage,
// and intersection correctness against a brute-force oracle.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/engine/daat.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

PostingList make_list(std::vector<DocId> docs, std::uint32_t tf = 5) {
  std::vector<Posting> p;
  p.reserve(docs.size());
  for (DocId d : docs) p.push_back(Posting{d, tf});
  return PostingList(std::move(p));
}

// --- DocSortedList -----------------------------------------------------

TEST(DocSortedListTest, SortsByDocId) {
  DocSortedList list(make_list({DocId{50}, DocId{3}, DocId{20}, DocId{7}}));
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0].doc.raw(), 3u);
  EXPECT_EQ(list[3].doc, DocId{50});
}

TEST(DocSortedListTest, AdvanceFindsFirstAtLeastTarget) {
  DocSortedList list(make_list({DocId{10}, DocId{20}, DocId{30}, DocId{40}, DocId{50}}));
  EXPECT_EQ(list.advance(0, DocId{25}), 2u);   // -> doc 30
  EXPECT_EQ(list.advance(0, DocId{30}), 2u);   // exact
  EXPECT_EQ(list.advance(0, DocId{5}), 0u);    // already positioned
  EXPECT_EQ(list.advance(3, DocId{35}), 3u);   // from later cursor
  EXPECT_EQ(list.advance(0, DocId{100}), 5u);  // exhausted
  EXPECT_EQ(list.advance(5, DocId{10}), 5u);   // from end stays at end
}

TEST(DocSortedListTest, AdvanceNeverMovesBackwards) {
  Rng rng(7);
  std::vector<DocId> docs;
  for (int i = 0; i < 5000; ++i) {
    docs.push_back(static_cast<DocId>(rng.next_below(100'000)));
  }
  std::sort(docs.begin(), docs.end());
  docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  DocSortedList list(make_list(docs));
  std::size_t pos = 0;
  for (int i = 0; i < 500; ++i) {
    const DocId target = static_cast<DocId>(rng.next_below(100'000));
    const std::size_t next = list.advance(pos, target);
    EXPECT_GE(next, pos);
    if (next < list.size()) {
      EXPECT_GE(list[next].doc, target);
      if (next > 0 && list[next].doc > target && next > pos) {
        EXPECT_LT(list[next - 1].doc, target);
      }
    }
    if (target >= (pos < list.size() ? list[pos].doc : DocId{})) pos = next;
    if (pos >= list.size()) pos = 0;
  }
}

TEST(DocSortedListTest, LongJumpsUseSkips) {
  std::vector<DocId> docs(10'000);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    docs[i] = static_cast<DocId>(i * 3);
  }
  DocSortedList list(make_list(docs), /*skip_interval=*/64);
  std::uint64_t hops = 0;
  list.advance(0, DocId{29'000}, &hops);
  EXPECT_GT(hops, 0u);
}

// --- DaatProcessor ------------------------------------------------------------

CorpusConfig daat_corpus() {
  CorpusConfig cfg;
  cfg.num_docs = 3'000;
  cfg.vocab_size = 120;
  cfg.terms_per_doc = 20;
  cfg.max_df_fraction = 0.5;  // dense lists: intersections non-empty
  return cfg;
}

class DaatTest : public ::testing::Test {
 protected:
  DaatTest() : rng_(55), corpus_(daat_corpus(), rng_), index_(corpus_) {}

  /// Brute-force oracle: docs containing every term.
  std::set<DocId> oracle(const std::vector<TermId>& terms) {
    std::set<DocId> acc;
    bool first = true;
    for (TermId t : terms) {
      std::set<DocId> docs;
      for (const Posting& p : index_.postings(t)->postings()) {
        docs.insert(p.doc);
      }
      if (first) {
        acc = std::move(docs);
        first = false;
      } else {
        std::set<DocId> merged;
        std::set_intersection(acc.begin(), acc.end(), docs.begin(),
                              docs.end(),
                              std::inserter(merged, merged.begin()));
        acc = std::move(merged);
      }
    }
    return acc;
  }

  Rng rng_;
  MaterializedCorpus corpus_;
  MaterializedIndex index_;
};

TEST_F(DaatTest, MatchesBruteForceIntersection) {
  DaatProcessor daat(/*top_k=*/100'000);  // keep every match
  for (QueryId qid{}; qid < QueryId{20}; ++qid) {
    Query q{qid, {TermId{static_cast<std::uint32_t>(qid.raw() % 40)},
                  TermId{static_cast<std::uint32_t>(40 + qid.raw() % 40)}}};
    DaatStats stats;
    const ResultEntry result = daat.intersect(index_, q, &stats);
    const auto expected = oracle(q.terms);
    ASSERT_EQ(result.docs.size(), expected.size()) << "query " << qid.raw();
    for (const ScoredDoc& d : result.docs) {
      EXPECT_TRUE(expected.count(d.doc)) << d.doc.raw();
    }
    EXPECT_EQ(stats.docs_scored, expected.size());
  }
}

TEST_F(DaatTest, ThreeTermIntersection) {
  DaatProcessor daat(100'000);
  Query q{QueryId{1}, {TermId{0}, TermId{1}, TermId{2}}};
  const auto result = daat.intersect(index_, q);
  const auto expected = oracle(q.terms);
  EXPECT_EQ(result.docs.size(), expected.size());
}

TEST_F(DaatTest, ScoresDescending) {
  DaatProcessor daat(50);
  Query q{QueryId{2}, {TermId{0}, TermId{1}}};
  const auto result = daat.intersect(index_, q);
  for (std::size_t i = 1; i < result.docs.size(); ++i) {
    EXPECT_GE(result.docs[i - 1].score, result.docs[i].score);
  }
}

TEST_F(DaatTest, TopKBoundsOutput) {
  DaatProcessor daat(5);
  Query q{QueryId{3}, {TermId{0}, TermId{1}}};
  const auto result = daat.intersect(index_, q);
  EXPECT_LE(result.docs.size(), 5u);
}

TEST_F(DaatTest, EmptyQueryAndMissingTerm) {
  DaatProcessor daat;
  EXPECT_TRUE(daat.intersect(index_, Query{QueryId{4}, {}}).docs.empty());
}

TEST_F(DaatTest, SkipHopsObservedOnSelectiveQueries) {
  // Intersecting a rare term with a dense one forces long advances in
  // the dense list — the "skipped reads" of paper SSIII.
  TermId rare = TermId{0}, dense = TermId{0};
  std::size_t min_df = ~0ull, max_df = 0;
  for (TermId t{}; t < TermId{index_.vocab_size()}; ++t) {
    const auto df = index_.postings(t)->size();
    if (df > 0 && df < min_df) {
      min_df = df;
      rare = t;
    }
    if (df > max_df) {
      max_df = df;
      dense = t;
    }
  }
  ASSERT_NE(rare, dense);
  DaatProcessor daat(100'000);
  DaatStats stats;
  daat.intersect(index_, Query{QueryId{5}, {rare, dense}}, &stats);
  // Far fewer postings touched than the dense list holds.
  EXPECT_LT(stats.postings_touched, max_df);
}

}  // namespace
}  // namespace ssdse
