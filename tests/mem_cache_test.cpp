#include <gtest/gtest.h>

#include "src/cache/mem_list_cache.hpp"
#include "src/cache/mem_result_cache.hpp"
#include "src/index/inverted_index.hpp"
#include "src/util/flat_lru_map.hpp"
#include "src/util/lru_map.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

ResultEntry make_result(QueryId qid) {
  ResultEntry e;
  e.query = qid;
  e.docs = {{DocId{static_cast<std::uint32_t>(qid.raw())}, 1.0f}};
  return e;
}

// --- MemResultCache -----------------------------------------------------

TEST(MemResultCacheTest, HitBumpsFrequency) {
  MemResultCache cache(100 * KiB);  // 5 entries
  cache.insert(make_result(QueryId{1}));
  EXPECT_EQ(cache.lookup(QueryId{1})->freq, 2u);
  EXPECT_EQ(cache.lookup(QueryId{1})->freq, 3u);
  EXPECT_EQ(cache.lookup(QueryId{2}), nullptr);
}

TEST(MemResultCacheTest, LruEvictionOrder) {
  MemResultCache cache(40 * KiB);  // 2 entries
  cache.insert(make_result(QueryId{1}));
  cache.insert(make_result(QueryId{2}));
  cache.lookup(QueryId{1});  // 1 becomes MRU
  const auto ins = cache.insert(make_result(QueryId{3}));
  EXPECT_EQ(ins.handle->entry.query.raw(), 3u);
  ASSERT_EQ(ins.evicted.size(), 1u);
  EXPECT_EQ(ins.evicted[0].entry.query, QueryId{2});
  EXPECT_TRUE(cache.contains(QueryId{1}));
  EXPECT_TRUE(cache.contains(QueryId{3}));
}

TEST(MemResultCacheTest, ReinsertRefreshesWithoutEviction) {
  MemResultCache cache(40 * KiB);
  cache.insert(make_result(QueryId{1}));
  cache.insert(make_result(QueryId{2}));
  const auto ins = cache.insert(make_result(QueryId{1}));
  EXPECT_NE(ins.handle, nullptr);
  EXPECT_TRUE(ins.evicted.empty());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(MemResultCacheTest, CapacityAccounting) {
  MemResultCache cache(100 * KiB);
  EXPECT_EQ(cache.max_entries(), 5u);
  for (QueryId q{}; q < QueryId{10}; ++q) cache.insert(make_result(q));
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.used_bytes(), 5 * kResultEntryBytes);
}

TEST(MemResultCacheTest, EvictionCarriesFrequency) {
  MemResultCache cache(20 * KiB);  // 1 entry
  cache.insert(make_result(QueryId{1}));
  cache.lookup(QueryId{1});
  cache.lookup(QueryId{1});
  const auto ins = cache.insert(make_result(QueryId{2}));
  ASSERT_EQ(ins.evicted.size(), 1u);
  EXPECT_EQ(ins.evicted[0].freq, 3u);
}

TEST(MemResultCacheTest, InsertHandleIsStableAcrossRecencyChurn) {
  MemResultCache cache(100 * KiB);  // 5 entries
  const auto ins = cache.insert(make_result(QueryId{1}));
  ASSERT_NE(ins.handle, nullptr);
  for (QueryId q = QueryId{2}; q <= QueryId{5}; ++q) cache.insert(make_result(q));
  cache.lookup(QueryId{3});  // recency churn must not move the node
  EXPECT_EQ(ins.handle->entry.query, QueryId{1});
  EXPECT_EQ(&cache.lookup(QueryId{1})->entry, &ins.handle->entry);
}

TEST(MemResultCacheTest, DegenerateCapacityHoldsZeroEntries) {
  MemResultCache cache(kResultEntryBytes / 2);  // below one entry
  EXPECT_EQ(cache.max_entries(), 0u);
  const auto ins = cache.insert(make_result(QueryId{1}));
  // The entry is bounced straight to the eviction path, never cached.
  EXPECT_EQ(ins.handle, nullptr);
  ASSERT_EQ(ins.evicted.size(), 1u);
  EXPECT_EQ(ins.evicted[0].entry.query, QueryId{1});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(QueryId{1}), nullptr);
}

// --- MemListCache ------------------------------------------------------------

CachedList list_info(Bytes cached, Bytes full, std::uint64_t freq = 1,
                     std::uint32_t sc = 1) {
  CachedList c;
  c.cached_bytes = cached;
  c.full_bytes = full;
  c.utilization = static_cast<double>(cached) / static_cast<double>(full);
  c.freq = freq;
  c.sc_blocks = sc;
  c.ev = static_cast<double>(freq) / sc;
  return c;
}

TEST(MemListCacheTest, PrefixRuleGovernsHits) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(TermId{7}, list_info(100 * KiB, 400 * KiB));
  EXPECT_NE(cache.lookup(TermId{7}, 50 * KiB), nullptr);
  EXPECT_NE(cache.lookup(TermId{7}, 100 * KiB), nullptr);
  // Needing more than the cached prefix is a miss.
  EXPECT_EQ(cache.lookup(TermId{7}, 200 * KiB), nullptr);
  EXPECT_EQ(cache.lookup(TermId{8}, 1), nullptr);
}

TEST(MemListCacheTest, HitBumpsFreqAndEv) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(TermId{1}, list_info(10 * KiB, 10 * KiB, 1, 2));
  const CachedList* e = cache.lookup(TermId{1}, 1 * KiB);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->freq, 2u);
  EXPECT_DOUBLE_EQ(e->ev, 1.0);  // 2 / 2
}

TEST(MemListCacheTest, LruPolicyEvictsLru) {
  MemListCache cache(100 * KiB, CachePolicy::kLru, 4);
  cache.insert(TermId{1}, list_info(40 * KiB, 40 * KiB));
  cache.insert(TermId{2}, list_info(40 * KiB, 40 * KiB));
  cache.lookup(TermId{1}, 1);
  const auto evicted = cache.insert(TermId{3}, list_info(40 * KiB, 40 * KiB));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term.raw(), 2u);
}

TEST(MemListCacheTest, CblruEvictsMinEvInWindow) {
  // Window covers the whole cache; the min-EV entry must go first even
  // if it is not the LRU one (Fig. 12).
  MemListCache cache(120 * KiB, CachePolicy::kCblru, 8);
  cache.insert(TermId{1}, list_info(40 * KiB, 40 * KiB, /*freq=*/50, /*sc=*/1));
  cache.insert(TermId{2}, list_info(40 * KiB, 40 * KiB, /*freq=*/2, /*sc=*/1));
  cache.insert(TermId{3}, list_info(40 * KiB, 40 * KiB, /*freq=*/30, /*sc=*/1));
  // LRU order (old->new): 1, 2, 3. Min EV is term 2.
  const auto evicted = cache.insert(TermId{4}, list_info(40 * KiB, 40 * KiB, 10, 1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, TermId{2});
  EXPECT_TRUE(cache.contains(TermId{1}));
}

TEST(MemListCacheTest, CblruWindowLimitsScan) {
  // Window of 1: only the LRU entry is examined, so the global min-EV
  // entry deeper in the list survives.
  MemListCache cache(100 * KiB, CachePolicy::kCblru, 1);
  cache.insert(TermId{1}, list_info(40 * KiB, 40 * KiB, /*freq=*/1, /*sc=*/1));   // min EV
  cache.insert(TermId{2}, list_info(40 * KiB, 40 * KiB, /*freq=*/90, /*sc=*/1));
  cache.lookup(TermId{1}, 1);  // promote term 1 to MRU; LRU is now 2
  const auto evicted = cache.insert(TermId{3}, list_info(40 * KiB, 40 * KiB, 5, 1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, TermId{2});  // LRU evicted despite higher EV
}

TEST(MemListCacheTest, OversizedEntryPassesThrough) {
  MemListCache cache(50 * KiB, CachePolicy::kCblru, 4);
  const auto evicted = cache.insert(TermId{1}, list_info(80 * KiB, 80 * KiB));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, TermId{1});
  EXPECT_FALSE(cache.contains(TermId{1}));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(MemListCacheTest, ReinsertUpdatesBytesAccounting) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(TermId{1}, list_info(100 * KiB, 400 * KiB));
  cache.insert(TermId{1}, list_info(200 * KiB, 400 * KiB));
  EXPECT_EQ(cache.used_bytes(), 200 * KiB);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MemListCacheTest, ReinsertKeepsLargerFreq) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(TermId{1}, list_info(10 * KiB, 10 * KiB, /*freq=*/9));
  cache.insert(TermId{1}, list_info(10 * KiB, 10 * KiB, /*freq=*/1));
  EXPECT_EQ(cache.lookup(TermId{1}, 1)->freq, 10u);  // max(9,1) + the hit
}

TEST(MemListCacheTest, MultipleEvictionsUntilFit) {
  MemListCache cache(100 * KiB, CachePolicy::kLru, 4);
  cache.insert(TermId{1}, list_info(40 * KiB, 40 * KiB));
  cache.insert(TermId{2}, list_info(40 * KiB, 40 * KiB));
  const auto evicted = cache.insert(TermId{3}, list_info(90 * KiB, 90 * KiB));
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains(TermId{3}));
}

// --- FlatLruMap vs LruMap shadow equivalence ----------------------------
// The open-addressing swap (DESIGN.md §13) is only legal because recency
// semantics are identical. Drive both containers through the same
// randomized op stream and demand identical observable behaviour at
// every step, including full LRU-order drains at checkpoints.

TEST(FlatLruMapTest, ShadowsLruMapUnderRandomizedChurn) {
  LruMap<TermId, std::uint64_t> ref;
  FlatLruMap<TermId, std::uint64_t> flat;
  Rng rng(4242);
  for (int step = 0; step < 20'000; ++step) {
    const auto key = static_cast<TermId>(rng.next_below(200));
    switch (rng.next_below(4)) {
      case 0: {
        const std::uint64_t v = rng.next_u64();
        ref.insert(key, v);
        flat.insert(key, v);
        break;
      }
      case 1: {
        auto* rv = ref.touch(key);
        auto* fv = flat.touch(key);
        ASSERT_EQ(rv == nullptr, fv == nullptr) << "step " << step;
        if (rv) {
          ASSERT_EQ(*rv, *fv) << "step " << step;
        }
        break;
      }
      case 2: {
        const auto re = ref.erase(key);
        const auto fe = flat.erase(key);
        ASSERT_EQ(re.has_value(), fe.has_value()) << "step " << step;
        if (re) {
          ASSERT_EQ(*re, *fe) << "step " << step;
        }
        break;
      }
      case 3: {
        const auto rp = ref.pop_lru();
        const auto fp = flat.pop_lru();
        ASSERT_EQ(rp.has_value(), fp.has_value()) << "step " << step;
        if (rp) {
          ASSERT_EQ(rp->first, fp->first) << "step " << step;
          ASSERT_EQ(rp->second, fp->second) << "step " << step;
        }
        break;
      }
    }
    ASSERT_EQ(ref.size(), flat.size()) << "step " << step;
    ASSERT_EQ(ref.contains(key), flat.contains(key)) << "step " << step;
    if (step % 4'000 == 3'999) {
      // Checkpoint: the full LRU->MRU orders must match exactly.
      auto h = flat.lru_handle();
      for (auto it = ref.rbegin(); it != ref.rend(); ++it) {
        ASSERT_NE(h, (FlatLruMap<TermId, std::uint64_t>::npos))
            << "order walk at step " << step;
        ASSERT_EQ(flat.key_at(h), it->first) << "order walk at step " << step;
        ASSERT_EQ(flat.value_at(h), it->second)
            << "order walk at step " << step;
        h = flat.more_recent(h);
      }
      ASSERT_EQ(h, (FlatLruMap<TermId, std::uint64_t>::npos));
    }
  }
}

TEST(FlatLruMapTest, HandleScanMatchesReverseIteration) {
  LruMap<TermId, int> ref;
  FlatLruMap<TermId, int> flat;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto key = static_cast<TermId>(rng.next_below(100));
    const int v = static_cast<int>(rng.next_below(1'000));
    ref.insert(key, v);
    flat.insert(key, v);
    if (rng.chance(0.3)) {
      const auto t = static_cast<TermId>(rng.next_below(100));
      ref.touch(t);
      flat.touch(t);
    }
  }
  // Walk LRU -> MRU through both interfaces.
  auto h = flat.lru_handle();
  for (auto it = ref.rbegin(); it != ref.rend(); ++it) {
    ASSERT_NE(h, (FlatLruMap<TermId, int>::npos));
    EXPECT_EQ(flat.key_at(h), it->first);
    EXPECT_EQ(flat.value_at(h), it->second);
    h = flat.more_recent(h);
  }
  EXPECT_EQ(h, (FlatLruMap<TermId, int>::npos));
}

// --- encoded-byte cached-size accounting --------------------------------
// The satellite regression: TermMeta::list_bytes (what MemListCache
// charges) must reflect the *encoded* posting-block size, so a
// compressed index fits several-fold more lists into the same capacity —
// observable as a change in capacity-based eviction counts.

TEST(MemListCacheTest, EncodedSizeAccountingChangesEvictionCounts) {
  CorpusConfig cfg;
  cfg.num_docs = 4'000;
  cfg.vocab_size = 200;
  cfg.terms_per_doc = 30;
  cfg.max_df_fraction = 0.4;
  cfg.seed = 55;
  cfg.codec = "raw";
  Rng rng_raw(cfg.seed);
  MaterializedCorpus raw_corpus(cfg, rng_raw);
  MaterializedIndex raw_index(raw_corpus);

  CorpusConfig packed_cfg = cfg;
  packed_cfg.codec = "block-packed";
  Rng rng_packed(cfg.seed);
  MaterializedCorpus packed_corpus(packed_cfg, rng_packed);
  MaterializedIndex packed_index(packed_corpus);

  // Same postings, different accounting: the packed index's charged
  // bytes are the encoded slice sizes, several-fold below raw.
  Bytes raw_total = 0;
  Bytes packed_total = 0;
  for (TermId t{}; t < TermId{cfg.vocab_size}; ++t) {
    ASSERT_EQ(raw_index.doc_sorted(t).size(), packed_index.doc_sorted(t).size());
    raw_total += raw_index.term_meta_fast(t).list_bytes;
    packed_total += packed_index.term_meta_fast(t).list_bytes;
    EXPECT_EQ(packed_index.term_meta_fast(t).list_bytes,
              packed_index.block_store().term_bytes(t));
  }
  EXPECT_LT(packed_total * 5 / 2, raw_total);

  // Identical insertion sequence at a fixed capacity: encoded-byte
  // charging must strictly reduce capacity-based evictions.
  const Bytes capacity = raw_total / 4;
  const auto evictions = [&](const MaterializedIndex& index) {
    MemListCache cache(capacity, CachePolicy::kLru, 4);
    std::size_t evicted = 0;
    for (TermId t{}; t < TermId{cfg.vocab_size}; ++t) {
      const Bytes bytes = index.term_meta_fast(t).list_bytes;
      evicted += cache.insert(t, list_info(bytes, bytes)).size();
    }
    return evicted;
  };
  const std::size_t raw_evictions = evictions(raw_index);
  const std::size_t packed_evictions = evictions(packed_index);
  EXPECT_GT(raw_evictions, 0u);
  EXPECT_LT(packed_evictions, raw_evictions);
}

}  // namespace
}  // namespace ssdse
