#include <gtest/gtest.h>

#include "src/cache/mem_list_cache.hpp"
#include "src/cache/mem_result_cache.hpp"

namespace ssdse {
namespace {

ResultEntry make_result(QueryId qid) {
  ResultEntry e;
  e.query = qid;
  e.docs = {{static_cast<DocId>(qid), 1.0f}};
  return e;
}

// --- MemResultCache -----------------------------------------------------

TEST(MemResultCacheTest, HitBumpsFrequency) {
  MemResultCache cache(100 * KiB);  // 5 entries
  cache.insert(make_result(1));
  EXPECT_EQ(cache.lookup(1)->freq, 2u);
  EXPECT_EQ(cache.lookup(1)->freq, 3u);
  EXPECT_EQ(cache.lookup(2), nullptr);
}

TEST(MemResultCacheTest, LruEvictionOrder) {
  MemResultCache cache(40 * KiB);  // 2 entries
  cache.insert(make_result(1));
  cache.insert(make_result(2));
  cache.lookup(1);  // 1 becomes MRU
  const auto ins = cache.insert(make_result(3));
  EXPECT_EQ(ins.handle->entry.query, 3u);
  ASSERT_EQ(ins.evicted.size(), 1u);
  EXPECT_EQ(ins.evicted[0].entry.query, 2u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(MemResultCacheTest, ReinsertRefreshesWithoutEviction) {
  MemResultCache cache(40 * KiB);
  cache.insert(make_result(1));
  cache.insert(make_result(2));
  const auto ins = cache.insert(make_result(1));
  EXPECT_NE(ins.handle, nullptr);
  EXPECT_TRUE(ins.evicted.empty());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(MemResultCacheTest, CapacityAccounting) {
  MemResultCache cache(100 * KiB);
  EXPECT_EQ(cache.max_entries(), 5u);
  for (QueryId q = 0; q < 10; ++q) cache.insert(make_result(q));
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.used_bytes(), 5 * kResultEntryBytes);
}

TEST(MemResultCacheTest, EvictionCarriesFrequency) {
  MemResultCache cache(20 * KiB);  // 1 entry
  cache.insert(make_result(1));
  cache.lookup(1);
  cache.lookup(1);
  const auto ins = cache.insert(make_result(2));
  ASSERT_EQ(ins.evicted.size(), 1u);
  EXPECT_EQ(ins.evicted[0].freq, 3u);
}

TEST(MemResultCacheTest, InsertHandleIsStableAcrossRecencyChurn) {
  MemResultCache cache(100 * KiB);  // 5 entries
  const auto ins = cache.insert(make_result(1));
  ASSERT_NE(ins.handle, nullptr);
  for (QueryId q = 2; q <= 5; ++q) cache.insert(make_result(q));
  cache.lookup(3);  // recency churn must not move the node
  EXPECT_EQ(ins.handle->entry.query, 1u);
  EXPECT_EQ(&cache.lookup(1)->entry, &ins.handle->entry);
}

TEST(MemResultCacheTest, DegenerateCapacityHoldsZeroEntries) {
  MemResultCache cache(kResultEntryBytes / 2);  // below one entry
  EXPECT_EQ(cache.max_entries(), 0u);
  const auto ins = cache.insert(make_result(1));
  // The entry is bounced straight to the eviction path, never cached.
  EXPECT_EQ(ins.handle, nullptr);
  ASSERT_EQ(ins.evicted.size(), 1u);
  EXPECT_EQ(ins.evicted[0].entry.query, 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
}

// --- MemListCache ------------------------------------------------------------

CachedList list_info(Bytes cached, Bytes full, std::uint64_t freq = 1,
                     std::uint32_t sc = 1) {
  CachedList c;
  c.cached_bytes = cached;
  c.full_bytes = full;
  c.utilization = static_cast<double>(cached) / static_cast<double>(full);
  c.freq = freq;
  c.sc_blocks = sc;
  c.ev = static_cast<double>(freq) / sc;
  return c;
}

TEST(MemListCacheTest, PrefixRuleGovernsHits) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(7, list_info(100 * KiB, 400 * KiB));
  EXPECT_NE(cache.lookup(7, 50 * KiB), nullptr);
  EXPECT_NE(cache.lookup(7, 100 * KiB), nullptr);
  // Needing more than the cached prefix is a miss.
  EXPECT_EQ(cache.lookup(7, 200 * KiB), nullptr);
  EXPECT_EQ(cache.lookup(8, 1), nullptr);
}

TEST(MemListCacheTest, HitBumpsFreqAndEv) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(1, list_info(10 * KiB, 10 * KiB, 1, 2));
  const CachedList* e = cache.lookup(1, 1 * KiB);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->freq, 2u);
  EXPECT_DOUBLE_EQ(e->ev, 1.0);  // 2 / 2
}

TEST(MemListCacheTest, LruPolicyEvictsLru) {
  MemListCache cache(100 * KiB, CachePolicy::kLru, 4);
  cache.insert(1, list_info(40 * KiB, 40 * KiB));
  cache.insert(2, list_info(40 * KiB, 40 * KiB));
  cache.lookup(1, 1);
  const auto evicted = cache.insert(3, list_info(40 * KiB, 40 * KiB));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, 2u);
}

TEST(MemListCacheTest, CblruEvictsMinEvInWindow) {
  // Window covers the whole cache; the min-EV entry must go first even
  // if it is not the LRU one (Fig. 12).
  MemListCache cache(120 * KiB, CachePolicy::kCblru, 8);
  cache.insert(1, list_info(40 * KiB, 40 * KiB, /*freq=*/50, /*sc=*/1));
  cache.insert(2, list_info(40 * KiB, 40 * KiB, /*freq=*/2, /*sc=*/1));
  cache.insert(3, list_info(40 * KiB, 40 * KiB, /*freq=*/30, /*sc=*/1));
  // LRU order (old->new): 1, 2, 3. Min EV is term 2.
  const auto evicted = cache.insert(4, list_info(40 * KiB, 40 * KiB, 10, 1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, 2u);
  EXPECT_TRUE(cache.contains(1));
}

TEST(MemListCacheTest, CblruWindowLimitsScan) {
  // Window of 1: only the LRU entry is examined, so the global min-EV
  // entry deeper in the list survives.
  MemListCache cache(100 * KiB, CachePolicy::kCblru, 1);
  cache.insert(1, list_info(40 * KiB, 40 * KiB, /*freq=*/1, /*sc=*/1));   // min EV
  cache.insert(2, list_info(40 * KiB, 40 * KiB, /*freq=*/90, /*sc=*/1));
  cache.lookup(1, 1);  // promote term 1 to MRU; LRU is now 2
  const auto evicted = cache.insert(3, list_info(40 * KiB, 40 * KiB, 5, 1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, 2u);  // LRU evicted despite higher EV
}

TEST(MemListCacheTest, OversizedEntryPassesThrough) {
  MemListCache cache(50 * KiB, CachePolicy::kCblru, 4);
  const auto evicted = cache.insert(1, list_info(80 * KiB, 80 * KiB));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].term, 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(MemListCacheTest, ReinsertUpdatesBytesAccounting) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(1, list_info(100 * KiB, 400 * KiB));
  cache.insert(1, list_info(200 * KiB, 400 * KiB));
  EXPECT_EQ(cache.used_bytes(), 200 * KiB);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MemListCacheTest, ReinsertKeepsLargerFreq) {
  MemListCache cache(1 * MiB, CachePolicy::kCblru, 4);
  cache.insert(1, list_info(10 * KiB, 10 * KiB, /*freq=*/9));
  cache.insert(1, list_info(10 * KiB, 10 * KiB, /*freq=*/1));
  EXPECT_EQ(cache.lookup(1, 1)->freq, 10u);  // max(9,1) + the hit
}

TEST(MemListCacheTest, MultipleEvictionsUntilFit) {
  MemListCache cache(100 * KiB, CachePolicy::kLru, 4);
  cache.insert(1, list_info(40 * KiB, 40 * KiB));
  cache.insert(2, list_info(40 * KiB, 40 * KiB));
  const auto evicted = cache.insert(3, list_info(90 * KiB, 90 * KiB));
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains(3));
}

}  // namespace
}  // namespace ssdse
