// Property-based sweeps: whole-system invariants that must hold for
// every cache policy, configuration corner and seed, run via TEST_P.
#include <string>

#include <gtest/gtest.h>

#include "src/hybrid/search_system.hpp"

namespace ssdse {
namespace {

struct SystemCase {
  CachePolicy policy;
  Bytes mem_budget;
  std::uint64_t seed;
  bool index_on_ssd;
};

class SystemPropertyTest : public ::testing::TestWithParam<SystemCase> {};

TEST_P(SystemPropertyTest, InvariantsHoldOverQueryStream) {
  const SystemCase& param = GetParam();
  SystemConfig cfg;
  cfg.set_num_docs(100'000);
  cfg.set_memory_budget(param.mem_budget);
  cfg.cache.policy = param.policy;
  cfg.log.seed = param.seed;
  cfg.index_on_ssd = param.index_on_ssd;
  cfg.training_queries = 1'000;

  SearchSystem system(cfg);
  const std::uint64_t n = 2'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto out = system.execute(system.generator().next());
    // Responses are positive and bounded by a sane ceiling (seconds).
    ASSERT_GT(out.response.value(), 0.0);
    ASSERT_LT(out.response, 10.0 * kSecond);
    ASSERT_FALSE(out.result.docs.empty());
  }
  system.drain();

  const auto& cs = system.cache_manager().stats();
  // Hit ratios are probabilities.
  EXPECT_GE(cs.hit_ratio(), 0.0);
  EXPECT_LE(cs.hit_ratio(), 1.0);
  EXPECT_LE(cs.result_hits_mem + cs.result_hits_ssd, cs.result_lookups);
  EXPECT_LE(cs.list_hits_mem + cs.list_hits_ssd, cs.list_lookups);

  // Every query was classified exactly once.
  std::uint64_t classified = 0;
  for (std::size_t s = 0; s < kNumSituations; ++s) {
    classified += system.metrics().situation_count(static_cast<Situation>(s));
  }
  EXPECT_EQ(classified, n);

  // Storage accounting: flash time only exists when an L2 is present.
  if (!cfg.cache.l2) {
    EXPECT_EQ(cs.background_flash_time.value(), 0.0);
  }
  if (const Ssd* ssd = system.cache_ssd()) {
    const auto& fs = ssd->ftl().stats();
    EXPECT_GE(fs.write_amplification(ssd->nand().stats()),
              fs.host_writes ? 1.0 : 0.0);
    // Erases never exceed programs (each erase needs a prior full
    // block's worth of programs in steady state).
    EXPECT_LE(ssd->nand().stats().block_erases * 1ull,
              ssd->nand().stats().page_programs);
  }
}

std::vector<SystemCase> system_cases() {
  std::vector<SystemCase> cases;
  for (CachePolicy p :
       {CachePolicy::kLru, CachePolicy::kCblru, CachePolicy::kCbslru}) {
    for (Bytes budget : {2 * MiB, 16 * MiB}) {
      cases.push_back({p, budget, 1, false});
    }
    cases.push_back({p, 8 * MiB, 99, false});
  }
  cases.push_back({CachePolicy::kCblru, 8 * MiB, 1, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBudgetsSeeds, SystemPropertyTest,
    ::testing::ValuesIn(system_cases()),
    [](const ::testing::TestParamInfo<SystemCase>& param_info) {
      const auto& p = param_info.param;
      return std::string(to_string(p.policy)) + "_" +
             std::to_string(p.mem_budget / MiB) + "MiB_seed" +
             std::to_string(p.seed) + (p.index_on_ssd ? "_issd" : "");
    });

// --- Hybrid-scheme invariant: SSD hits must leave the SSD copy intact ----

TEST(HybridSchemeProperty, SsdHitKeepsCopyReadable) {
  SystemConfig cfg;
  cfg.set_num_docs(100'000);
  cfg.set_memory_budget(2 * MiB);
  cfg.cache.policy = CachePolicy::kCblru;
  cfg.training_queries = 500;
  SearchSystem system(cfg);
  system.run(3'000);
  // Any term still indexed by the SSD list cache must serve a lookup
  // (i.e. reads never deleted data - the exclusive scheme would have).
  auto& cm = system.cache_manager();
  Micros t = micros(0);
  std::uint64_t present = 0;
  for (TermId term{}; term < TermId{2'000}; ++term) {
    if (cm.ssd_lists()->contains(term)) {
      ++present;
    }
  }
  EXPECT_GT(present, 0u);
  (void)t;
}

// --- Zipf workload sanity across exponents --------------------------------

class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, HitRatioIncreasesWithSkew) {
  // Not a strict monotonicity check; just: a strongly skewed stream must
  // beat a uniform one given identical capacities.
  auto hit_ratio = [](double zipf) {
    SystemConfig cfg;
    cfg.set_num_docs(100'000);
    cfg.set_memory_budget(4 * MiB);
    cfg.log.query_zipf = zipf;
    cfg.training_queries = 500;
    SearchSystem system(cfg);
    system.run(3'000);
    return system.cache_manager().stats().hit_ratio();
  };
  const double skewed = hit_ratio(GetParam());
  const double uniform = hit_ratio(0.0);
  EXPECT_GT(skewed, uniform);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweepTest,
                         ::testing::Values(0.8, 1.0, 1.2),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           return "zipf" +
                                  std::to_string(static_cast<int>(
                                      param_info.param * 10));
                         });

}  // namespace
}  // namespace ssdse
