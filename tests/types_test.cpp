// Strong-type layer tests (DESIGN.md §16).
//
// Two halves. The compile-time half proves, via SFINAE detection and
// type traits, that the ill-formed mixes really are ill-formed: Micros
// plus a raw double or a Bytes count, cross-space id assignment and
// comparison, implicit double→Micros narrowing — each rejected at
// compile time, each a silent unit bug before the strong types landed.
// The runtime half proves the wrappers are *only* types: tagged values
// flowing through StreamingStats, LatencyHistogram, MetricsRegistry and
// the JSON writer produce bit-identical results to the raw doubles and
// integers they wrap (the pinned-fingerprint guarantee depends on it).
#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/telemetry/json_writer.hpp"
#include "src/telemetry/registry.hpp"
#include "src/util/stats.hpp"
#include "src/util/types.hpp"

namespace ssdse {
namespace {

// --- SFINAE probes ------------------------------------------------------

template <class A, class B, class = void>
struct CanAdd : std::false_type {};
template <class A, class B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanSubtract : std::false_type {};
template <class A, class B>
struct CanSubtract<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanMultiply : std::false_type {};
template <class A, class B>
struct CanMultiply<
    A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanCompareEq : std::false_type {};
template <class A, class B>
struct CanCompareEq<
    A, B, std::void_t<decltype(std::declval<A>() == std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanCompareLt : std::false_type {};
template <class A, class B>
struct CanCompareLt<
    A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

template <class C, class I, class = void>
struct CanIndex : std::false_type {};
template <class C, class I>
struct CanIndex<
    C, I, std::void_t<decltype(std::declval<C&>()[std::declval<I>()])>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanPlusAssign : std::false_type {};
template <class A, class B>
struct CanPlusAssign<
    A, B, std::void_t<decltype(std::declval<A&>() += std::declval<B>())>>
    : std::true_type {};

// --- Micros: legal surface ---------------------------------------------

static_assert(CanAdd<Micros, Micros>::value);
static_assert(CanSubtract<Micros, Micros>::value);
static_assert(CanMultiply<Micros, double>::value);
static_assert(CanMultiply<double, Micros>::value);
static_assert(CanMultiply<Micros, Bytes>::value);  // per-unit cost × count
static_assert(CanCompareEq<Micros, Micros>::value);
static_assert(CanCompareLt<Micros, Micros>::value);
static_assert(CanPlusAssign<Micros, Micros>::value);
// Micros / Micros is a dimensionless ratio.
static_assert(
    std::is_same_v<decltype(std::declval<Micros>() / std::declval<Micros>()),
                   double>);
// Entry is explicit only.
static_assert(std::is_constructible_v<Micros, double>);

// --- Micros: ill-formed mixes ------------------------------------------

static_assert(!CanAdd<Micros, double>::value);
static_assert(!CanAdd<double, Micros>::value);
static_assert(!CanAdd<Micros, Bytes>::value);  // time + bytes is nonsense
static_assert(!CanAdd<Bytes, Micros>::value);
static_assert(!CanSubtract<Micros, double>::value);
static_assert(!CanPlusAssign<Micros, double>::value);
static_assert(!CanPlusAssign<double, Micros>::value);
static_assert(!CanCompareEq<Micros, double>::value);
static_assert(!CanCompareLt<Micros, double>::value);
// No implicit narrowing in either direction: the only exits are
// .value() and the sanctioned overloads at histogram boundaries.
static_assert(!std::is_convertible_v<double, Micros>);
static_assert(!std::is_convertible_v<Micros, double>);
static_assert(!std::is_assignable_v<Micros&, double>);

// --- Tagged ids: legal surface -----------------------------------------

static_assert(CanCompareEq<TermId, TermId>::value);
static_assert(CanCompareLt<DocId, DocId>::value);
static_assert(CanAdd<TermId, std::uint32_t>::value);  // affine: id + offset
static_assert(
    std::is_same_v<decltype(std::declval<DocId>() - std::declval<DocId>()),
                   std::uint32_t>);  // affine: id − id = raw distance
static_assert(std::is_constructible_v<TermId, std::uint32_t>);
static_assert(std::is_constructible_v<QueryId, std::uint64_t>);

// --- Tagged ids: cross-space mixes are ill-formed ----------------------

static_assert(!std::is_assignable_v<TermId&, DocId>);
static_assert(!std::is_assignable_v<DocId&, TermId>);
static_assert(!std::is_assignable_v<QueryId&, DocId>);
static_assert(!CanCompareEq<TermId, DocId>::value);
static_assert(!CanCompareLt<DocId, QueryId>::value);
static_assert(!CanAdd<TermId, DocId>::value);
static_assert(!CanSubtract<TermId, DocId>::value);
// No implicit raw-integer bridge in either direction.
static_assert(!std::is_convertible_v<std::uint32_t, TermId>);
static_assert(!std::is_convertible_v<TermId, std::uint32_t>);
static_assert(!std::is_assignable_v<TermId&, std::uint32_t>);
// Ids are positions, not quantities: no +=, no id + id.
static_assert(!CanPlusAssign<TermId, std::uint32_t>::value);
static_assert(!CanAdd<TermId, TermId>::value);

// --- IdVector: only its own id space indexes ---------------------------

static_assert(CanIndex<IdVector<DocId, int>, DocId>::value);
static_assert(!CanIndex<IdVector<DocId, int>, TermId>::value);
static_assert(!CanIndex<IdVector<DocId, int>, std::size_t>::value);
static_assert(!CanIndex<IdVector<DocId, int>, int>::value);
static_assert(CanIndex<IdVector<TermId, double>, TermId>::value);
static_assert(!CanIndex<IdVector<TermId, double>, DocId>::value);

// --- Micros runtime: wrapper arithmetic is the raw arithmetic ----------

TEST(MicrosTest, EntryHelpersAndRoundTrip) {
  EXPECT_EQ(micros(123.5).value(), 123.5);
  EXPECT_EQ(ms(2).value(), 2'000.0);
  EXPECT_EQ(sec(3).value(), 3'000'000.0);
  EXPECT_EQ(kMillisecond, ms(1));
  EXPECT_EQ(kSecond, sec(1));
  EXPECT_EQ(Micros{}.value(), 0.0);
}

TEST(MicrosTest, ArithmeticIsBitIdenticalToRawDoubles) {
  // Same IEEE ops in the same order: the wrapper must add nothing.
  const double xs[] = {0.0, 1.5, 3.7e5, 1e-3, 8'191.25};
  double raw = 0.0;
  Micros typed{};
  for (const double x : xs) {
    raw += x * 3.0 + (x / 7.0);
    typed += micros(x) * 3.0 + (micros(x) / 7.0);
  }
  EXPECT_EQ(typed.value(), raw);  // exact, not approximate
  EXPECT_EQ((micros(5.5) - micros(1.25)).value(), 5.5 - 1.25);
  EXPECT_EQ((-micros(4.0)).value(), -4.0);
  EXPECT_EQ(micros(9.0) / micros(2.0), 9.0 / 2.0);
}

TEST(MicrosTest, ComparisonsMatchRaw) {
  EXPECT_TRUE(micros(1) < micros(2));
  EXPECT_TRUE(micros(2) >= micros(2));
  EXPECT_TRUE(micros(3) == micros(3));
  EXPECT_TRUE(Micros{} < micros(0.1));
}

// --- Tagged ids runtime ------------------------------------------------

TEST(TaggedIdTest, RawRoundTripAndEnumeration) {
  TermId t{41};
  EXPECT_EQ(t.raw(), 41u);
  EXPECT_EQ((++t).raw(), 42u);
  EXPECT_EQ((t++).raw(), 42u);  // postfix yields the old value
  EXPECT_EQ(t.raw(), 43u);
  EXPECT_EQ((t + 7).raw(), 50u);
  EXPECT_EQ(TermId{50} - TermId{43}, 7u);
}

TEST(TaggedIdTest, HashMatchesRawHashAndWorksInMaps) {
  EXPECT_EQ(std::hash<DocId>{}(DocId{99}),
            std::hash<std::uint32_t>{}(99u));
  EXPECT_EQ(std::hash<QueryId>{}(QueryId{1ull << 40}),
            std::hash<std::uint64_t>{}(1ull << 40));
  std::unordered_map<DocId, int> m;
  m[DocId{3}] = 30;
  m[DocId{4}] = 40;
  EXPECT_EQ(m.at(DocId{3}), 30);
  EXPECT_EQ(m.count(DocId{5}), 0u);
}

TEST(TaggedIdTest, IdVectorSurface) {
  IdVector<DocId, int> v(3, 7);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[DocId{2}], 7);
  EXPECT_TRUE(v.contains(DocId{2}));
  EXPECT_FALSE(v.contains(DocId{3}));
  EXPECT_EQ(v.end_id(), DocId{3});
  v.push_back(9);
  EXPECT_EQ(v[DocId{3}], 9);
  int sum = 0;
  for (DocId d{}; d != v.end_id(); ++d) sum += v[d];
  EXPECT_EQ(sum, 30);
  // Adopting a raw mirror vector: position i becomes the slot of Id{i}.
  IdVector<TermId, int> adopted(std::vector<int>{5, 6});
  EXPECT_EQ(adopted[TermId{1}], 6);
}

// --- Telemetry boundaries: tagged in == raw in -------------------------

TEST(TypeBoundaryTest, StreamingStatsIdenticalForMicrosAndRaw) {
  StreamingStats typed, raw;
  const double xs[] = {12.5, 900.0, 33.25, 1e6, 0.125};
  for (const double x : xs) {
    typed.add(micros(x));
    raw.add(x);
  }
  EXPECT_EQ(typed.count(), raw.count());
  EXPECT_EQ(typed.sum(), raw.sum());
  EXPECT_EQ(typed.mean(), raw.mean());
  EXPECT_EQ(typed.variance(), raw.variance());
  EXPECT_EQ(typed.min(), raw.min());
  EXPECT_EQ(typed.max(), raw.max());
}

TEST(TypeBoundaryTest, LatencyHistogramIdenticalForMicrosAndRaw) {
  LatencyHistogram typed, raw;
  for (int i = 1; i <= 2'000; ++i) {
    const double x = 0.5 * i;
    typed.add(micros(x));
    raw.add(x);
  }
  EXPECT_EQ(typed.count(), raw.count());
  EXPECT_EQ(typed.mean(), raw.mean());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(typed.quantile(q), raw.quantile(q));
  }
  EXPECT_EQ(typed.summary(), raw.summary());
}

TEST(TypeBoundaryTest, RegistrySnapshotIdenticalForMicrosAndRaw) {
  LatencyHistogram typed_h, raw_h;
  for (int i = 1; i <= 500; ++i) {
    typed_h.add(ms(i));
    raw_h.add(1'000.0 * i);
  }
  telemetry::MetricsRegistry typed_reg, raw_reg;
  typed_reg.histogram("query.latency.us", &typed_h);
  raw_reg.histogram("query.latency.us", &raw_h);
  const Micros build_time = ms(42);
  typed_reg.gauge_value("index.build.us", build_time.value());
  raw_reg.gauge_value("index.build.us", 42'000.0);

  const auto typed_snap = typed_reg.snapshot();
  const auto raw_snap = raw_reg.snapshot();
  ASSERT_EQ(typed_snap.metrics().size(), raw_snap.metrics().size());
  const auto* th = typed_snap.find("query.latency.us");
  const auto* rh = raw_snap.find("query.latency.us");
  ASSERT_NE(th, nullptr);
  ASSERT_NE(rh, nullptr);
  EXPECT_EQ(th->hist.count(), rh->hist.count());
  EXPECT_EQ(th->hist.quantile(0.99), rh->hist.quantile(0.99));
  const auto* tg = typed_snap.find("index.build.us");
  const auto* rg = raw_snap.find("index.build.us");
  ASSERT_NE(tg, nullptr);
  ASSERT_NE(rg, nullptr);
  EXPECT_EQ(tg->gauge.mean(), rg->gauge.mean());
}

TEST(TypeBoundaryTest, JsonReportIdenticalForMicrosAndRaw) {
  const Micros latency = micros(1'234.5);
  const QueryId qid{77};
  telemetry::JsonWriter typed, raw;
  typed.begin_object();
  typed.key("query_id");
  typed.value(qid.raw());
  typed.key("response_us");
  typed.value(latency.value());
  typed.end_object();
  raw.begin_object();
  raw.key("query_id");
  raw.value(std::uint64_t{77});
  raw.key("response_us");
  raw.value(1'234.5);
  raw.end_object();
  EXPECT_EQ(typed.str(), raw.str());
}

}  // namespace
}  // namespace ssdse
