// Cross-cutting edge-case tests: metrics coverage accounting, SSD wear
// fractions, container corners.
#include <gtest/gtest.h>

#include "src/hybrid/metrics.hpp"
#include "src/index/posting.hpp"
#include "src/ssd/ssd.hpp"
#include "src/util/bitmap.hpp"
#include "src/util/lru_map.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

// --- RunMetrics coverage -------------------------------------------------

TEST(CoverageTest, FullCoverageIsOne) {
  RunMetrics m;
  m.record_coverage(4, 4);
  m.record_coverage(3, 3);
  EXPECT_DOUBLE_EQ(m.request_coverage(), 1.0);
}

TEST(CoverageTest, PartialCoverage) {
  RunMetrics m;
  m.record_coverage(1, 4);  // one of four requests served
  m.record_coverage(3, 4);
  EXPECT_DOUBLE_EQ(m.request_coverage(), 0.5);
}

TEST(CoverageTest, EmptyIsZero) {
  RunMetrics m;
  EXPECT_EQ(m.request_coverage(), 0.0);
}

TEST(CoverageTest, CacheServedFractionCountsS1toS5) {
  RunMetrics m;
  m.record(Situation::kS1_ResultMemory, micros(1));
  m.record(Situation::kS5_ListsSsd, micros(1));
  m.record(Situation::kS6_ListsMemoryHdd, micros(1));
  m.record(Situation::kS9_ListsHdd, micros(1));
  EXPECT_DOUBLE_EQ(m.cache_served_fraction(), 0.5);
}

// --- Ssd wear --------------------------------------------------------------

TEST(SsdWearTest, WearFractionsTrackErases) {
  SsdConfig cfg;
  cfg.nand.num_blocks = 32;
  cfg.nand.pages_per_block = 8;
  Ssd ssd(cfg);
  EXPECT_EQ(ssd.wear_fraction(), 0.0);
  EXPECT_EQ(ssd.worst_wear_fraction(), 0.0);
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) {
    EXPECT_TRUE(ssd.write_pages(rng.next_below(ssd.logical_pages()), 1).ok());
  }
  ASSERT_GT(ssd.block_erases(), 0u);
  EXPECT_GT(ssd.wear_fraction(), 0.0);
  EXPECT_GE(ssd.worst_wear_fraction(), ssd.wear_fraction());
  // With the default 100k-cycle rating, wear is proportional to erases.
  EXPECT_NEAR(ssd.wear_fraction(100'000) * 10,
              ssd.wear_fraction(10'000), 1e-12);
}

// --- LruMap iterator erase ------------------------------------------------

TEST(LruMapEdgeTest, EraseByIteratorKeepsIndexConsistent) {
  LruMap<int, int> m;
  for (int i = 0; i < 5; ++i) m.insert(i, i * 10);
  // Erase the middle entry via iterator.
  auto it = m.begin();
  ++it;
  ++it;
  it = m.erase(it);
  EXPECT_EQ(m.size(), 4u);
  // The erased key is gone; the rest survive and stay ordered.
  int found = 0;
  for (const auto& [k, v] : m) found += k;
  EXPECT_EQ(found, 0 + 1 + 3 + 4);
  EXPECT_EQ(m.peek(2), nullptr);
  EXPECT_NE(m.peek(3), nullptr);
}

TEST(LruMapEdgeTest, ClearEmptiesEverything) {
  LruMap<int, int> m;
  m.insert(1, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.touch(1), nullptr);
}

// --- Bitmap resize -----------------------------------------------------------

TEST(BitmapEdgeTest, ResizePreservesExistingBits) {
  // Tombstone maps grow one doc at a time; growth must not drop bits
  // set earlier (and shrink must recount what survives the cut).
  Bitmap b(10);
  b.set(3);
  b.resize(20, true);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_TRUE(b.test(3));
  EXPECT_FALSE(b.test(4));  // old bits keep their old value...
  EXPECT_TRUE(b.test(10));  // ...new bits take `value`
  EXPECT_EQ(b.popcount(), 11u);
  b.resize(7, false);
  EXPECT_EQ(b.size(), 7u);
  EXPECT_TRUE(b.test(3));
  EXPECT_EQ(b.popcount(), 1u);
}

TEST(BitmapEdgeTest, ResizeAcrossWordBoundaries) {
  Bitmap b(60);
  b.set(59);
  b.resize(130, true);  // partial word tail + two fresh words
  EXPECT_TRUE(b.test(59));
  EXPECT_FALSE(b.test(0));
  for (std::size_t i = 60; i < 130; ++i) EXPECT_TRUE(b.test(i));
  EXPECT_EQ(b.popcount(), 71u);
  b.resize(64);  // shrink to an exact word boundary
  EXPECT_EQ(b.popcount(), 5u);  // 59..63 survive
  EXPECT_EQ(b.first_clear(), 0u);
}

TEST(BitmapEdgeTest, ExactWordBoundary) {
  Bitmap b(64, true);
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.first_clear(), 64u);
  b.clear(63);
  EXPECT_EQ(b.first_clear(), 63u);
}

// --- PostingList corner ---------------------------------------------------------

TEST(PostingEdgeTest, ZeroSkipIntervalClamped) {
  PostingList list({{DocId{1}, 5}, {DocId{2}, 3}}, /*skip_interval=*/0);
  EXPECT_EQ(list.skip_interval(), 1u);
  EXPECT_EQ(list.skips().size(), 2u);
}

TEST(PostingEdgeTest, SingleElementPrefix) {
  PostingList list({{DocId{9}, 2}});
  EXPECT_EQ(list.prefix(0.0001).size(), 1u);  // ceil: never zero if >0
}

}  // namespace
}  // namespace ssdse
