#include <gtest/gtest.h>

#include "src/cache/ssd_list_cache.hpp"

namespace ssdse {
namespace {

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.nand.num_blocks = 128;
  cfg.nand.pages_per_block = 16;  // 32 KiB cache blocks for the tests
  return cfg;
}

constexpr Bytes kBlk = 16 * 2 * KiB;  // one cache block = 32 KiB here

class SsdListCacheTest : public ::testing::Test {
 protected:
  SsdListCacheTest() : ssd_(small_ssd()), file_(ssd_, 0, 10),
                       cache_(file_, /*W=*/3) {}
  Ssd ssd_;
  SsdCacheFile file_;
  SsdListCache cache_;
};

TEST_F(SsdListCacheTest, InsertThenPrefixLookup) {
  const Micros wt = cache_.insert(TermId{1}, kBlk + 5, /*freq=*/3);
  EXPECT_GT(wt.value(), 0.0);
  EXPECT_TRUE(cache_.contains(TermId{1}));
  Micros t = micros(0);
  const SsdListEntry* e = cache_.lookup(TermId{1}, kBlk, t);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->sc_blocks, 2u);  // kBlk+5 bytes -> 2 blocks
  EXPECT_EQ(e->freq, 4u);
  EXPECT_GT(t.value(), 0.0);
  // Beyond the cached prefix: miss.
  EXPECT_EQ(cache_.lookup(TermId{1}, 3 * kBlk, t), nullptr);
  EXPECT_EQ(cache_.lookup(TermId{404}, 1, t), nullptr);
}

TEST_F(SsdListCacheTest, HitMarksEntryAndBlocksReplaceable) {
  (void)cache_.insert(TermId{1}, 2 * kBlk, 1);
  Micros t = micros(0);
  cache_.lookup(TermId{1}, kBlk, t);
  EXPECT_EQ(file_.replaceable_count(), 2u);  // both blocks of the entry
}

TEST_F(SsdListCacheTest, ResurrectionAvoidsRewrite) {
  (void)cache_.insert(TermId{1}, 2 * kBlk, 1);
  Micros t = micros(0);
  cache_.lookup(TermId{1}, kBlk, t);  // replaceable now
  const auto writes_before = cache_.stats().blocks_written;
  const Micros wt = cache_.insert(TermId{1}, kBlk, /*freq=*/5);  // smaller prefix
  EXPECT_EQ(wt.value(), 0.0);
  EXPECT_EQ(cache_.stats().blocks_written, writes_before);
  EXPECT_EQ(cache_.stats().resurrections, 1u);
  EXPECT_EQ(file_.replaceable_count(), 0u);  // back to normal
}

TEST_F(SsdListCacheTest, GrowingPrefixForcesRewrite) {
  (void)cache_.insert(TermId{1}, kBlk, 1);
  const auto writes_before = cache_.stats().blocks_written;
  (void)cache_.insert(TermId{1}, 3 * kBlk, 1);  // longer prefix than cached
  EXPECT_GT(cache_.stats().blocks_written, writes_before);
  Micros t = micros(0);
  EXPECT_NE(cache_.lookup(TermId{1}, 3 * kBlk, t), nullptr);
}

TEST_F(SsdListCacheTest, ReplaceableEvictedFirstInWindow) {
  // Fill the 10-block region with 5 entries of 2 blocks.
  for (TermId term = TermId{1}; term <= TermId{5}; ++term) (void)cache_.insert(term, 2 * kBlk, 1);
  Micros t = micros(0);
  // Make term 2 (inside the W=3 LRU window: entries 1,2,3) replaceable.
  cache_.lookup(TermId{2}, kBlk, t);
  (void)cache_.insert(TermId{6}, 2 * kBlk, 1);
  EXPECT_FALSE(cache_.contains(TermId{2}));  // replaceable victim chosen first
  EXPECT_TRUE(cache_.contains(TermId{1}));   // plain LRU survivor
}

TEST_F(SsdListCacheTest, ExactSizeMatchPreferredOverAssembly) {
  // Entries: sizes 1,3,1,1,1 blocks -> region 10 blocks, 3 free.
  (void)cache_.insert(TermId{1}, kBlk, 1);
  (void)cache_.insert(TermId{2}, 3 * kBlk, 1);
  (void)cache_.insert(TermId{3}, kBlk, 1);
  (void)cache_.insert(TermId{4}, kBlk, 1);
  (void)cache_.insert(TermId{5}, kBlk, 1);
  EXPECT_EQ(file_.free_count(), 3u);
  // Need 4 blocks: 3 free + 1 more. Window (LRU end) holds 1,2,3; the
  // shortfall is exactly 1 block, and term 1 matches it exactly.
  (void)cache_.insert(TermId{6}, 4 * kBlk, 1);
  EXPECT_FALSE(cache_.contains(TermId{1}));
  EXPECT_TRUE(cache_.contains(TermId{2}));  // 3-block entry untouched
  EXPECT_TRUE(cache_.contains(TermId{6}));
}

TEST_F(SsdListCacheTest, AssemblySpansSeveralWindowEntries) {
  for (TermId term = TermId{1}; term <= TermId{5}; ++term) (void)cache_.insert(term, 2 * kBlk, 1);
  // Need 4 blocks, no free, no exact-size (needing 4, entries are 2):
  // two LRU-window entries are assembled.
  (void)cache_.insert(TermId{6}, 4 * kBlk, 1);
  EXPECT_FALSE(cache_.contains(TermId{1}));
  EXPECT_FALSE(cache_.contains(TermId{2}));
  EXPECT_TRUE(cache_.contains(TermId{3}));
  EXPECT_TRUE(cache_.contains(TermId{6}));
}

TEST_F(SsdListCacheTest, WorstCaseWholeListScan) {
  // One huge entry beyond the window plus small window entries; a write
  // bigger than the whole window must reach into the working region.
  (void)cache_.insert(TermId{1}, kBlk, 1);      // LRU end after later inserts
  (void)cache_.insert(TermId{2}, kBlk, 1);
  (void)cache_.insert(TermId{3}, kBlk, 1);
  (void)cache_.insert(TermId{4}, kBlk, 1);
  (void)cache_.insert(TermId{5}, 6 * kBlk, 1);  // MRU, outside W=3 window
  // Need 8 blocks; window holds 3 small entries + 0 free -> pass 4.
  (void)cache_.insert(TermId{6}, 8 * kBlk, 1);
  EXPECT_TRUE(cache_.contains(TermId{6}));
  EXPECT_FALSE(cache_.contains(TermId{5}));  // working-region entry sacrificed
}

TEST_F(SsdListCacheTest, TooLargeRejected) {
  const Micros t = cache_.insert(TermId{1}, 11 * kBlk, 1);
  EXPECT_EQ(t, Micros{});
  EXPECT_FALSE(cache_.contains(TermId{1}));
  EXPECT_EQ(cache_.stats().rejected_too_large, 1u);
}

TEST_F(SsdListCacheTest, ExcessVictimBlocksTrimmed) {
  // Evicting a 3-block victim for a 1-block shortfall trims the excess.
  (void)cache_.insert(TermId{1}, 3 * kBlk, 1);
  for (TermId term = TermId{2}; term <= TermId{4}; ++term) (void)cache_.insert(term, 2 * kBlk, 1);
  EXPECT_EQ(file_.free_count(), 1u);
  (void)cache_.insert(TermId{5}, 2 * kBlk, 1);  // needs 1 extra block; victim is term 1
  EXPECT_FALSE(cache_.contains(TermId{1}));
  EXPECT_TRUE(cache_.contains(TermId{5}));
  // Two of the victim's three blocks were not needed: back to free.
  EXPECT_GE(file_.free_count(), 1u);
}

TEST_F(SsdListCacheTest, StaticPreloadPinnedAndUnevictable) {
  std::vector<std::tuple<TermId, Bytes, std::uint64_t>> pinned = {
      {TermId{100}, 2 * kBlk, 50},
      {TermId{101}, 2 * kBlk, 40},
  };
  (void)cache_.preload_static(pinned);
  EXPECT_TRUE(cache_.is_static(TermId{100}));
  Micros t = micros(0);
  const SsdListEntry* e = cache_.lookup(TermId{100}, kBlk, t);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->freq, 51u);
  // Dynamic churn cannot evict static entries.
  for (TermId term = TermId{1}; term <= TermId{30}; ++term) (void)cache_.insert(term, 2 * kBlk, 1);
  EXPECT_TRUE(cache_.contains(TermId{100}));
  EXPECT_TRUE(cache_.contains(TermId{101}));
  // Inserting a static term is a no-op (already pinned).
  EXPECT_EQ(cache_.insert(TermId{100}, kBlk, 1), Micros{});
}

TEST_F(SsdListCacheTest, StatsAccounting) {
  (void)cache_.insert(TermId{1}, 2 * kBlk, 1);
  Micros t = micros(0);
  cache_.lookup(TermId{1}, 1, t);
  cache_.lookup(TermId{2}, 1, t);
  EXPECT_EQ(cache_.stats().inserts, 1u);
  EXPECT_EQ(cache_.stats().lookups, 2u);
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_EQ(cache_.stats().blocks_written, 2u);
}

}  // namespace
}  // namespace ssdse
