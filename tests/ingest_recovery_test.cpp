// Ingest-log durability and crash-injection tests (DESIGN.md §12).
//
// Write-ahead discipline under test: a crash torn into any log append
// leaves the on-disk prefix describing exactly the mutations that were
// applied (the torn record's mutation never ran), so a warm restart
// that replays the repaired prefix against a fresh base index
// reconverges bit-identically to a rebuild-from-scratch oracle.
#include <bit>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/daat.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/ingest/ingest_log.hpp"
#include "src/util/crash_point.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("ssdse_ingest_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

CorpusConfig small_corpus() {
  CorpusConfig cc;
  cc.num_docs = 1'200;
  cc.vocab_size = 300;
  cc.terms_per_doc = 12;
  cc.seed = 9;
  return cc;
}

SystemConfig ingest_recovery_system(const CorpusConfig& cc,
                                    const std::string& dir) {
  SystemConfig cfg;
  cfg.corpus = cc;
  cfg.log.vocab_size = cc.vocab_size;
  cfg.log.distinct_queries = 2'000;
  cfg.set_memory_budget(2 * MiB);
  cfg.cache.ssd_result_capacity = 4 * MiB;
  cfg.cache.ssd_list_capacity = 16 * MiB;
  cfg.training_queries = 500;
  cfg.ingest.enabled = true;
  cfg.recovery.enabled = true;
  cfg.recovery.dir = dir;
  return cfg;
}

ingest::DocBag make_bag(Rng& rng, std::uint32_t vocab, std::size_t terms) {
  ingest::DocBag bag;
  while (bag.size() < terms) {
    const auto t = static_cast<TermId>(rng.next_below(vocab));
    bool dup = false;
    for (const auto& [bt, tf] : bag) dup |= bt == t;
    if (!dup) bag.emplace_back(t, 1 + static_cast<std::uint32_t>(
                                        rng.next_below(4)));
  }
  std::sort(bag.begin(), bag.end());
  return bag;
}

void expect_docs_eq(const ResultEntry& got, const ResultEntry& want,
                    QueryId qid) {
  ASSERT_EQ(got.docs.size(), want.docs.size()) << "query " << qid.raw();
  for (std::size_t i = 0; i < got.docs.size(); ++i) {
    EXPECT_EQ(got.docs[i].doc, want.docs[i].doc)
        << "query " << qid.raw() << " rank " << i;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got.docs[i].score),
              std::bit_cast<std::uint32_t>(want.docs[i].score))
        << "query " << qid.raw() << " rank " << i;
  }
}

/// Compare a restarted system's DAAT results against an oracle index
/// rebuilt from the mirrored documents.
void expect_matches_oracle(MaterializedIndex& restarted,
                           const CorpusConfig& cc,
                           const std::vector<ingest::DocBag>& mirror_docs) {
  MaterializedCorpus oracle_corpus(cc, mirror_docs);
  MaterializedIndex oracle_index(oracle_corpus);
  ASSERT_EQ(restarted.num_docs(), oracle_index.num_docs());
  DaatProcessor a(10), b(10);
  Rng qrng(77);
  for (QueryId qid{}; qid < QueryId{100}; ++qid) {
    Query q{qid, {}};
    const std::size_t terms = 1 + qrng.next_below(3);
    for (std::size_t i = 0; i < terms; ++i) {
      q.terms.push_back(static_cast<TermId>(qrng.next_below(cc.vocab_size)));
    }
    const ResultEntry got = a.intersect(restarted, q, nullptr);
    const ResultEntry want = b.intersect(oracle_index, q, nullptr);
    expect_docs_eq(got, want, qid);
  }
}

// --- Log encode/scan/repair --------------------------------------------

TEST(IngestLogTest, RoundTripAllRecordTypes) {
  const std::string path = test_dir("roundtrip") + "/ingest.ssdse";
  {
    ingest::IngestLog log(path);
    log.append_ingest(DocId{100}, 5, {{TermId{1}, 2}, {TermId{7}, 1}});
    log.append_delete(DocId{42}, 6);
    log.append_merge_seal(101, 7);
    log.append_ingest(DocId{101}, 8, {});  // empty bag is legal on the wire
  }
  const auto scan = ingest::IngestLog::scan(path);
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.valid_bytes, fs::file_size(path));

  EXPECT_EQ(scan.records[0].type, recovery::RecordType::kIngest);
  EXPECT_EQ(scan.records[0].doc.raw(), 100u);
  EXPECT_EQ(scan.records[0].tick, 5u);
  ASSERT_EQ(scan.records[0].bag.size(), 2u);
  EXPECT_EQ(scan.records[0].bag[1], (std::pair<TermId, std::uint32_t>{7, 1}));

  EXPECT_EQ(scan.records[1].type, recovery::RecordType::kDelete);
  EXPECT_EQ(scan.records[1].doc, DocId{42});
  EXPECT_EQ(scan.records[1].tick, 6u);

  EXPECT_EQ(scan.records[2].type, recovery::RecordType::kMergeSeal);
  EXPECT_EQ(scan.records[2].doc_count, 101u);

  EXPECT_TRUE(scan.records[3].bag.empty());
}

TEST(IngestLogTest, MissingFileScansEmpty) {
  const auto scan =
      ingest::IngestLog::scan(test_dir("missing") + "/nope.ssdse");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(IngestLogTest, TornTailScansToPrefixAndRepairs) {
  const std::string path = test_dir("torn") + "/ingest.ssdse";
  Bytes first_two = 0;
  {
    ingest::IngestLog log(path);
    log.append_ingest(DocId{10}, 1, {{TermId{3}, 1}});
    log.append_delete(DocId{4}, 2);
    first_two = log.bytes_written();
    // Tear 5 bytes into the third record.
    CrashInjector::instance().arm_byte(first_two + 5);
    EXPECT_THROW(log.append_merge_seal(11, 3), CrashException);
  }
  auto scan = ingest::IngestLog::scan(path);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, first_two);
  EXPECT_EQ(scan.torn_bytes, 5u);

  ASSERT_TRUE(ingest::IngestLog::repair(path, scan.valid_bytes));
  EXPECT_EQ(fs::file_size(path), first_two);
  {
    ingest::IngestLog log(path);
    log.append_merge_seal(11, 4);  // extends the repaired prefix
  }
  scan = ingest::IngestLog::scan(path);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[2].type, recovery::RecordType::kMergeSeal);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(IngestLogTest, ForeignRecordTypeEndsPrefix) {
  const std::string path = test_dir("foreign") + "/ingest.ssdse";
  Bytes first = 0;
  {
    ingest::IngestLog log(path);
    log.append_delete(DocId{1}, 1);
    first = log.bytes_written();
  }
  {
    // A cache-journal record in the ingest log is corruption by design.
    recovery::JournalWriter w(path);
    recovery::ByteWriter payload;
    payload.u64(99);
    w.append(recovery::RecordType::kJournalResultInvalidate, payload.take());
  }
  const auto scan = ingest::IngestLog::scan(path);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first);
  EXPECT_GT(scan.torn_bytes, 0u);
}

// --- Warm restart reconvergence ----------------------------------------

TEST(IngestRecoveryTest, CleanRestartReplaysChurn) {
  const CorpusConfig cc = small_corpus();
  const std::string dir = test_dir("clean_restart");
  const SystemConfig cfg = ingest_recovery_system(cc, dir);
  Rng corpus_rng(cc.seed);
  MaterializedCorpus corpus(cc, corpus_rng);
  std::vector<ingest::DocBag> mirror;
  for (DocId d{}; d < DocId{corpus.num_docs()}; ++d) mirror.push_back(corpus.doc(d));

  {
    MaterializedIndex index(corpus);
    SearchSystem a(cfg, index, corpus);
    Rng churn(61);
    for (int i = 0; i < 25; ++i) {
      (void)a.execute(a.generator().next());
      const ingest::DocBag bag = make_bag(churn, cc.vocab_size, 8);
      ASSERT_EQ(a.ingest_document(bag).raw(), mirror.size());
      mirror.push_back(bag);
      if (i % 5 == 4) {
        const auto victim =
            static_cast<DocId>(churn.next_below(index.num_docs()));
        if (a.delete_document(victim)) mirror[victim.raw()].clear();
      }
    }
    a.merge_now();
    EXPECT_GT(a.ingest_stats().merges, 0u);
  }

  // Restart against a FRESH base index (the on-disk index does not
  // carry the crashed process's in-memory merges).
  MaterializedIndex restarted(corpus);
  SearchSystem b(cfg, restarted, corpus);
  EXPECT_GT(b.ingest_stats().replayed_records, 0u);
  EXPECT_EQ(b.ingest_stats().replay_torn_bytes, 0u);
  EXPECT_EQ(b.ingest_stats().docs, 25u);
  expect_matches_oracle(restarted, cc, mirror);
}

TEST(IngestRecoveryTest, CrashMidIngestRecoversToPrefix) {
  const CorpusConfig cc = small_corpus();
  const std::string dir = test_dir("crash_ingest");
  const SystemConfig cfg = ingest_recovery_system(cc, dir);
  Rng corpus_rng(cc.seed);
  MaterializedCorpus corpus(cc, corpus_rng);
  std::vector<ingest::DocBag> mirror;
  for (DocId d{}; d < DocId{corpus.num_docs()}; ++d) mirror.push_back(corpus.doc(d));

  {
    MaterializedIndex index(corpus);
    SearchSystem a(cfg, index, corpus);
    Rng churn(62);
    for (int i = 0; i < 10; ++i) {
      const ingest::DocBag bag = make_bag(churn, cc.vocab_size, 6);
      ASSERT_EQ(a.ingest_document(bag).raw(), mirror.size());
      mirror.push_back(bag);
    }
    // Arm a tear a few bytes into the NEXT ingest append: the record is
    // torn before the in-memory apply, so the crashed mutation never
    // happened (write-ahead ordering).
    const fs::path log_path = fs::path(dir) / "ingest.ssdse";
    CrashInjector::instance().arm_byte(fs::file_size(log_path) + 3);
    bool crashed = false;
    try {
      (void)a.ingest_document(make_bag(churn, cc.vocab_size, 6));
    } catch (const CrashException&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
    // Abandon `a` as died-at-this-point.
  }

  MaterializedIndex restarted(corpus);
  SearchSystem b(cfg, restarted, corpus);
  EXPECT_GT(b.ingest_stats().replay_torn_bytes, 0u);
  EXPECT_EQ(b.ingest_stats().docs, 10u);  // torn 11th never applied
  expect_matches_oracle(restarted, cc, mirror);

  // The repaired log accepts new appends cleanly after restart.
  (void)b.ingest_document({{TermId{1}, 1}});
  mirror.push_back({{TermId{1}, 1}});
  expect_matches_oracle(restarted, cc, mirror);
}

TEST(IngestRecoveryTest, CrashMidMergeSealRecoversPreMergeState) {
  const CorpusConfig cc = small_corpus();
  const std::string dir = test_dir("crash_merge");
  const SystemConfig cfg = ingest_recovery_system(cc, dir);
  Rng corpus_rng(cc.seed);
  MaterializedCorpus corpus(cc, corpus_rng);
  std::vector<ingest::DocBag> mirror;
  for (DocId d{}; d < DocId{corpus.num_docs()}; ++d) mirror.push_back(corpus.doc(d));

  {
    MaterializedIndex index(corpus);
    SearchSystem a(cfg, index, corpus);
    Rng churn(63);
    for (int i = 0; i < 8; ++i) {
      const ingest::DocBag bag = make_bag(churn, cc.vocab_size, 6);
      (void)a.ingest_document(bag);
      mirror.push_back(bag);
    }
    ASSERT_TRUE(a.delete_document(DocId{3}));
    mirror[3].clear();
    // Tear inside the kMergeSeal record itself: the merge never ran.
    const fs::path log_path = fs::path(dir) / "ingest.ssdse";
    CrashInjector::instance().arm_byte(fs::file_size(log_path) + 4);
    bool crashed = false;
    try {
      a.merge_now();
    } catch (const CrashException&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
  }

  // Replay recovers the pre-merge (segment + tombstone) state; merging
  // is content-neutral, so results still match the full oracle.
  MaterializedIndex restarted(corpus);
  SearchSystem b(cfg, restarted, corpus);
  EXPECT_GT(b.ingest_stats().replay_torn_bytes, 0u);
  EXPECT_EQ(b.ingest_stats().merges, 0u);  // no seal committed
  ASSERT_NE(b.live_index(), nullptr);
  EXPECT_FALSE(b.live_index()->clean());
  expect_matches_oracle(restarted, cc, mirror);

  // A post-restart merge folds the replayed segment; still exact.
  b.merge_now();
  EXPECT_EQ(b.ingest_stats().merges, 1u);
  expect_matches_oracle(restarted, cc, mirror);
}

TEST(IngestRecoveryTest, CommittedSealReplaysMergeDeterministically) {
  const CorpusConfig cc = small_corpus();
  const std::string dir = test_dir("seal_replay");
  const SystemConfig cfg = ingest_recovery_system(cc, dir);
  Rng corpus_rng(cc.seed);
  MaterializedCorpus corpus(cc, corpus_rng);
  std::vector<ingest::DocBag> mirror;
  for (DocId d{}; d < DocId{corpus.num_docs()}; ++d) mirror.push_back(corpus.doc(d));

  {
    MaterializedIndex index(corpus);
    SearchSystem a(cfg, index, corpus);
    Rng churn(64);
    for (int i = 0; i < 6; ++i) {
      const ingest::DocBag bag = make_bag(churn, cc.vocab_size, 5);
      (void)a.ingest_document(bag);
      mirror.push_back(bag);
    }
    a.merge_now();
    // More churn after the sealed merge, left unmerged.
    const ingest::DocBag tail = make_bag(churn, cc.vocab_size, 5);
    (void)a.ingest_document(tail);
    mirror.push_back(tail);
  }

  MaterializedIndex restarted(corpus);
  SearchSystem b(cfg, restarted, corpus);
  EXPECT_EQ(b.ingest_stats().merges, 1u);  // replayed at the seal point
  ASSERT_NE(b.live_index(), nullptr);
  EXPECT_FALSE(b.live_index()->clean());  // the tail stays live
  expect_matches_oracle(restarted, cc, mirror);
}

}  // namespace
}  // namespace ssdse
