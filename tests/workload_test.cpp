#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/index/inverted_index.hpp"
#include "src/workload/log_analysis.hpp"
#include "src/workload/query_log.hpp"

namespace ssdse {
namespace {

QueryLogConfig small_log() {
  QueryLogConfig cfg;
  cfg.distinct_queries = 10'000;
  cfg.vocab_size = 5'000;
  return cfg;
}

TEST(QueryLogTest, QueryForRankDeterministic) {
  QueryLogGenerator a(small_log()), b(small_log());
  for (std::uint64_t r : {0ull, 1ull, 77ull, 9999ull}) {
    const Query qa = a.query_for_rank(r);
    const Query qb = b.query_for_rank(r);
    EXPECT_EQ(qa.id.raw(), r);
    EXPECT_EQ(qa.terms, qb.terms);
  }
}

TEST(QueryLogTest, TermCountWithinBounds) {
  QueryLogGenerator gen(small_log());
  for (int i = 0; i < 2000; ++i) {
    const Query q = gen.next();
    EXPECT_GE(q.terms.size(), 1u);
    EXPECT_LE(q.terms.size(), 4u);
    for (TermId t : q.terms) EXPECT_LT(t, TermId{5'000u});
  }
}

TEST(QueryLogTest, TermsWithinQueryAreDistinct) {
  QueryLogGenerator gen(small_log());
  for (int i = 0; i < 500; ++i) {
    const Query q = gen.next();
    for (std::size_t a = 0; a < q.terms.size(); ++a) {
      for (std::size_t b = a + 1; b < q.terms.size(); ++b) {
        EXPECT_NE(q.terms[a], q.terms[b]);
      }
    }
  }
}

TEST(QueryLogTest, PopularQueriesRepeat) {
  QueryLogGenerator gen(small_log());
  Counter freq;
  for (int i = 0; i < 20'000; ++i) freq.add(gen.next().id.raw());
  const auto sorted = freq.sorted();
  // Zipf: the hottest distinct query must repeat many times while the
  // tail is mostly singletons.
  EXPECT_GT(sorted[0].second, 100u);
  std::uint64_t singletons = 0;
  for (const auto& [id, c] : sorted) singletons += c == 1;
  EXPECT_GT(singletons, sorted.size() / 4);
}

TEST(QueryLogTest, TermAccessFrequencyZipfLike) {
  QueryLogGenerator gen(small_log());
  Counter freq;
  for (int i = 0; i < 20'000; ++i) {
    for (TermId t : gen.next().terms) freq.add(t.raw());
  }
  const auto sorted = freq.sorted();
  // Head term dominates the median term by a large factor (Fig. 3b).
  const auto median = sorted[sorted.size() / 2].second;
  EXPECT_GT(sorted[0].second, median * 20);
}

TEST(QueryLogTest, AliasSamplerKeepsDistributionShape) {
  QueryLogConfig cfg = small_log();
  cfg.alias_sampler = true;
  QueryLogGenerator gen(cfg);
  Counter freq;
  for (int i = 0; i < 20'000; ++i) {
    const Query q = gen.next();
    EXPECT_GE(q.terms.size(), 1u);
    EXPECT_LE(q.terms.size(), 4u);
    for (TermId t : q.terms) {
      EXPECT_LT(t, TermId{cfg.vocab_size});
      freq.add(t.raw());
    }
  }
  // Same Zipf-like shape as the default sampler (Fig. 3b): the head
  // term dwarfs the median term.
  const auto sorted = freq.sorted();
  const auto median = sorted[sorted.size() / 2].second;
  EXPECT_GT(sorted[0].second, median * 20);
}

TEST(QueryLogTest, AliasSamplerIsDeterministic) {
  QueryLogConfig cfg = small_log();
  cfg.alias_sampler = true;
  QueryLogGenerator a(cfg), b(cfg);
  for (int i = 0; i < 2000; ++i) {
    const Query qa = a.next();
    const Query qb = b.next();
    EXPECT_EQ(qa.id, qb.id);
    EXPECT_EQ(qa.terms, qb.terms);
  }
}

TEST(QueryLogTest, AliasSamplerChangesStreamButNotDefault) {
  // The flag is opt-in precisely because it alters the RNG draw
  // pattern; default-config streams must be byte-identical to a build
  // that never had the alias sampler.
  QueryLogConfig plain = small_log();
  QueryLogConfig alias = small_log();
  alias.alias_sampler = true;
  QueryLogGenerator gp(plain), ga(alias);
  int same = 0;
  for (int i = 0; i < 200; ++i) same += gp.next().id == ga.next().id;
  EXPECT_LT(same, 200);  // streams diverge...
  QueryLogGenerator gp2(plain);
  QueryLogGenerator gp3(plain);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(gp2.next().id, gp3.next().id);  // ...defaults do not
  }
}

TEST(QueryLogTest, StreamsDifferBySeed) {
  QueryLogConfig a = small_log();
  QueryLogConfig b = small_log();
  b.seed = 1234;
  QueryLogGenerator ga(a), gb(b);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += ga.next().id == gb.next().id;
  EXPECT_LT(same, 50);
}

// --- Formulas (paper SSVI) ---------------------------------------------------

TEST(FormulaTest, ScMatchesPaperExample) {
  // Paper: SI = 1000 KB, PU = 50 %, SB = 128 KB  =>  SC = 4 blocks.
  EXPECT_EQ(formula_sc_blocks(1000 * KiB, 0.5, 128 * KiB), 4u);
}

TEST(FormulaTest, ScEdgeCases) {
  EXPECT_EQ(formula_sc_blocks(0, 0.5, 128 * KiB), 0u);
  EXPECT_EQ(formula_sc_blocks(1, 1.0, 128 * KiB), 1u);       // ceil
  EXPECT_EQ(formula_sc_blocks(128 * KiB, 1.0, 128 * KiB), 1u);
  EXPECT_EQ(formula_sc_blocks(128 * KiB + 1, 1.0, 128 * KiB), 2u);
  EXPECT_EQ(formula_sc_blocks(1 * MiB, 0.0, 128 * KiB), 1u);  // floor of 1
}

TEST(FormulaTest, EvProportionalToFreqInverseToSize) {
  EXPECT_DOUBLE_EQ(formula_ev(100, 4), 25.0);
  EXPECT_DOUBLE_EQ(formula_ev(100, 2), 50.0);
  EXPECT_DOUBLE_EQ(formula_ev(200, 4), 50.0);
  EXPECT_DOUBLE_EQ(formula_ev(100, 0), 0.0);
}

// --- Log analysis ---------------------------------------------------------------

TEST(LogAnalysisTest, AccumulatesFrequenciesAndRanksByEv) {
  CorpusConfig cc;
  cc.num_docs = 100'000;
  cc.vocab_size = 5'000;
  AnalyticIndex index(cc);
  const auto analysis = analyze_log(small_log(), index, 5'000, 128 * KiB);
  EXPECT_EQ(analysis.sample_size, 5'000u);
  EXPECT_GT(analysis.term_freq.total(), 5'000u);  // >1 term per query
  ASSERT_FALSE(analysis.terms_by_ev.empty());
  for (std::size_t i = 1; i < analysis.terms_by_ev.size(); ++i) {
    EXPECT_GE(analysis.terms_by_ev[i - 1].ev, analysis.terms_by_ev[i].ev);
  }
  ASSERT_FALSE(analysis.queries_by_freq.empty());
  EXPECT_GE(analysis.queries_by_freq[0].second,
            analysis.queries_by_freq.back().second);
}

TEST(LogAnalysisTest, TevThresholdMonotone) {
  CorpusConfig cc;
  cc.num_docs = 100'000;
  cc.vocab_size = 5'000;
  AnalyticIndex index(cc);
  const auto analysis = analyze_log(small_log(), index, 3'000, 128 * KiB);
  // Keeping more terms means a lower threshold.
  EXPECT_GE(analysis.tev_for_fraction(0.1), analysis.tev_for_fraction(0.9));
  EXPECT_GE(analysis.tev_for_fraction(0.9), 0.0);
}

TEST(LogAnalysisTest, TrainingIsReplayable) {
  // Same config -> same analysis (the generator stream is deterministic).
  CorpusConfig cc;
  cc.num_docs = 100'000;
  cc.vocab_size = 5'000;
  AnalyticIndex index(cc);
  const auto a = analyze_log(small_log(), index, 2'000, 128 * KiB);
  const auto b = analyze_log(small_log(), index, 2'000, 128 * KiB);
  ASSERT_EQ(a.terms_by_ev.size(), b.terms_by_ev.size());
  for (std::size_t i = 0; i < a.terms_by_ev.size(); ++i) {
    EXPECT_EQ(a.terms_by_ev[i].term, b.terms_by_ev[i].term);
    EXPECT_EQ(a.terms_by_ev[i].freq, b.terms_by_ev[i].freq);
  }
}

}  // namespace
}  // namespace ssdse
