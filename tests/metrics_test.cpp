#include <gtest/gtest.h>

#include "src/hybrid/cost_model.hpp"
#include "src/hybrid/metrics.hpp"

namespace ssdse {
namespace {

// --- Situation classification (Table I) ---------------------------------

TEST(SituationTest, ResultHits) {
  EXPECT_EQ(classify_situation(true, Tier::kMemory, false, false, false),
            Situation::kS1_ResultMemory);
  EXPECT_EQ(classify_situation(true, Tier::kSsd, false, false, false),
            Situation::kS2_ResultSsd);
}

TEST(SituationTest, ListTierCombinations) {
  EXPECT_EQ(classify_situation(false, Tier::kMemory, true, false, false),
            Situation::kS3_ListsMemory);
  EXPECT_EQ(classify_situation(false, Tier::kMemory, true, true, false),
            Situation::kS4_ListsMemorySsd);
  EXPECT_EQ(classify_situation(false, Tier::kMemory, false, true, false),
            Situation::kS5_ListsSsd);
  EXPECT_EQ(classify_situation(false, Tier::kMemory, true, false, true),
            Situation::kS6_ListsMemoryHdd);
  EXPECT_EQ(classify_situation(false, Tier::kMemory, true, true, true),
            Situation::kS7_ListsMemorySsdHdd);
  EXPECT_EQ(classify_situation(false, Tier::kMemory, false, true, true),
            Situation::kS8_ListsSsdHdd);
  EXPECT_EQ(classify_situation(false, Tier::kMemory, false, false, true),
            Situation::kS9_ListsHdd);
}

TEST(SituationTest, NamesDistinct) {
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    for (std::size_t j = i + 1; j < kNumSituations; ++j) {
      EXPECT_STRNE(to_string(static_cast<Situation>(i)),
                   to_string(static_cast<Situation>(j)));
    }
  }
}

// --- RunMetrics -----------------------------------------------------------

TEST(RunMetricsTest, ProbabilitiesSumToOne) {
  RunMetrics m;
  m.record(Situation::kS1_ResultMemory, micros(100));
  m.record(Situation::kS1_ResultMemory, micros(200));
  m.record(Situation::kS9_ListsHdd, micros(5000));
  m.record(Situation::kS5_ListsSsd, micros(800));
  double sum = 0;
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    sum += m.situation_probability(static_cast<Situation>(i));
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(m.queries(), 4u);
  EXPECT_DOUBLE_EQ(m.situation_mean_time(Situation::kS1_ResultMemory).value(), 150.0);
}

TEST(RunMetricsTest, ThroughputAccountsBackgroundTime) {
  RunMetrics m;
  for (int i = 0; i < 10; ++i) m.record(Situation::kS3_ListsMemory, micros(1000.0));
  // 10 queries in 10 ms of foreground -> 1000 q/s.
  EXPECT_NEAR(m.throughput_qps(micros(0)), 1000.0, 1e-9);
  // Adding 10 ms of background flash time halves it.
  EXPECT_NEAR(m.throughput_qps(micros(10'000.0)), 500.0, 1e-9);
}

TEST(RunMetricsTest, EmptyMetricsSafe) {
  RunMetrics m;
  EXPECT_EQ(m.queries(), 0u);
  EXPECT_EQ(m.mean_response().value(), 0.0);
  EXPECT_EQ(m.throughput_qps(micros(0)), 0.0);
  EXPECT_EQ(m.situation_probability(Situation::kS1_ResultMemory), 0.0);
}

// --- CostModel ---------------------------------------------------------------

TEST(CostModelTest, PaperDollarFigures) {
  CostModel c;
  EXPECT_NEAR(c.dollars(1 * GiB, 0, 0), 14.5, 1e-9);
  EXPECT_NEAR(c.dollars(0, 1 * GiB, 0), 1.9, 1e-9);
  EXPECT_NEAR(c.dollars(0, 0, 1 * GiB), 0.06, 1e-9);
  EXPECT_NEAR(c.dollars(512 * MiB, 2 * GiB, 0), 14.5 / 2 + 3.8, 1e-9);
}

TEST(CostModelTest, SsdMuchCheaperThanDram) {
  CostModel c;
  // The paper's ratio: DRAM ~7.6x the $/GB of SSD.
  EXPECT_NEAR(c.dram_per_gb / c.ssd_per_gb, 7.63, 0.02);
}

TEST(CostModelTest, CostPerformanceLowerIsBetter) {
  CostModel c;
  // Same response: cheaper hardware wins. Same hardware: faster wins.
  EXPECT_LT(c.cost_performance(1 * GiB, 0, 0, ms(10)),
            c.cost_performance(2 * GiB, 0, 0, ms(10)));
  EXPECT_LT(c.cost_performance(1 * GiB, 0, 0, ms(5)),
            c.cost_performance(1 * GiB, 0, 0, ms(10)));
}

}  // namespace
}  // namespace ssdse
