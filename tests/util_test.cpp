#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/bitmap.hpp"
#include "src/util/lru_map.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/zipf.hpp"

namespace ssdse {
namespace {

// --- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (std::uint64_t n : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(n), n);
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 4.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 4.5);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng r(17);
  StreamingStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(RngTest, LognormalPositive) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng a(42);
  Rng b = a.split();
  // The split stream must not replay the parent stream.
  Rng a2(42);
  (void)a2.next_u64();  // consume the value split() drew
  int same = 0;
  for (int i = 0; i < 64; ++i) same += b.next_u64() == a2.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, GeometricAtLeastOne) {
  Rng r(29);
  for (int i = 0; i < 500; ++i) EXPECT_GE(r.geometric(0.3), 1u);
}

// --- Zipf --------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(1000, 1.0);
  double sum = 0;
  for (std::uint64_t k = 1; k <= 1000; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler z(500, 0.8);
  for (std::uint64_t k = 1; k < 500; ++k) {
    EXPECT_GE(z.pmf(k), z.pmf(k + 1));
  }
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  ZipfSampler z(10, 1.0);
  EXPECT_EQ(z.pmf(0), 0.0);
  EXPECT_EQ(z.pmf(11), 0.0);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfSampler z(100, 1.2);
  Rng r(1);
  for (int i = 0; i < 5000; ++i) {
    const auto k = z.sample(r);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  const std::uint64_t n = 50;
  ZipfSampler z(n, 1.0);
  Rng r(2);
  std::vector<std::uint64_t> counts(n + 1, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[z.sample(r)];
  for (std::uint64_t k = 1; k <= 5; ++k) {
    const double expected = z.pmf(k);
    const double got = static_cast<double>(counts[k]) / draws;
    EXPECT_NEAR(got, expected, 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler z(10, 0.0);
  Rng r(3);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(r)];
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k] / 100000.0, 0.1, 0.01);
  }
}

TEST(ZipfTest, LargeNSamplingWorks) {
  ZipfSampler z(100'000'000, 0.9);
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const auto k = z.sample(r);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100'000'000u);
  }
}

TEST(ZipfTest, GeneralizedHarmonicMatchesDirectSum) {
  for (double s : {0.5, 1.0, 1.5}) {
    double direct = 0;
    for (std::uint64_t k = 1; k <= 20000; ++k) {
      direct += std::pow(static_cast<double>(k), -s);
    }
    EXPECT_NEAR(generalized_harmonic(20000, s), direct, direct * 1e-6)
        << "s=" << s;
  }
}

// --- Alias-method Zipf (Vose) -------------------------------------------

TEST(AliasZipfTest, PmfMatchesRejectionSampler) {
  const std::uint64_t n = 1000;
  ZipfSampler ref(n, 1.0);
  AliasZipfSampler alias(n, 1.0);
  for (std::uint64_t k = 1; k <= n; ++k) {
    EXPECT_DOUBLE_EQ(alias.pmf(k), ref.pmf(k)) << "rank " << k;
  }
  EXPECT_EQ(alias.pmf(0), 0.0);
  EXPECT_EQ(alias.pmf(n + 1), 0.0);
}

TEST(AliasZipfTest, SamplesWithinRange) {
  AliasZipfSampler z(100, 1.2);
  Rng r(5);
  for (int i = 0; i < 5000; ++i) {
    const auto k = z.sample(r);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(AliasZipfTest, EmpiricalMatchesPmf) {
  const std::uint64_t n = 50;
  AliasZipfSampler z(n, 1.0);
  Rng r(6);
  std::vector<std::uint64_t> counts(n + 1, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[z.sample(r)];
  for (std::uint64_t k = 1; k <= 5; ++k) {
    const double expected = z.pmf(k);
    const double got = static_cast<double>(counts[k]) / draws;
    EXPECT_NEAR(got, expected, 0.01) << "rank " << k;
  }
}

TEST(AliasZipfTest, ExactlyTwoDrawsPerSample) {
  AliasZipfSampler z(1000, 1.0);
  // Two identically-seeded streams: one drives the sampler, the other
  // is advanced by hand two draws per sample. If the sampler consumed
  // any other number of values the streams would diverge.
  Rng a(7), b(7);
  for (int i = 0; i < 2000; ++i) {
    (void)z.sample(a);
    (void)b.next_below(1000);
    (void)b.next_double();
    // The probe draw advances both streams equally, so any draw-count
    // mismatch keeps the streams diverged for the rest of the loop.
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "sample " << i;
  }
}

TEST(AliasZipfTest, DeterministicAcrossInstances) {
  AliasZipfSampler z1(5000, 0.9), z2(5000, 0.9);
  Rng a(8), b(8);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(z1.sample(a), z2.sample(b));
}

TEST(AliasZipfTest, RejectsDegenerateSizes) {
  EXPECT_THROW(AliasZipfSampler(0, 1.0), std::invalid_argument);
}

// --- StreamingStats ------------------------------------------------------

TEST(StatsTest, BasicMoments) {
  StreamingStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(StatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, MergeEqualsCombined) {
  Rng r(6);
  StreamingStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(5.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

// --- LatencyHistogram ----------------------------------------------------

TEST(HistogramTest, QuantilesOrdered) {
  LatencyHistogram h;
  Rng r(8);
  for (int i = 0; i < 10000; ++i) h.add(r.lognormal(3.0, 1.0));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  LatencyHistogram h(0.1, 1e8, 1.05);
  for (int i = 1; i <= 10000; ++i) h.add(static_cast<double>(i));
  // p50 of 1..10000 is ~5000; bucketing error bounded by growth factor.
  EXPECT_NEAR(h.quantile(0.5), 5000, 5000 * 0.06);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(HistogramTest, EmptyQuantileZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, ExtremeQuantilesOfEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleSampleAllQuantilesAgree) {
  LatencyHistogram h;
  h.add(42.0);
  const double q0 = h.quantile(0.0);
  EXPECT_EQ(h.quantile(0.5), q0);
  EXPECT_EQ(h.quantile(1.0), q0);
  // Bucketed value within one growth factor of the sample.
  EXPECT_NEAR(q0, 42.0, 42.0 * 0.15);
  EXPECT_EQ(h.mean(), 42.0);
}

TEST(HistogramTest, BelowLoClampsToFirstBucket) {
  LatencyHistogram h(/*lo=*/1.0, /*hi=*/1e6, /*growth=*/1.5);
  h.add(0.001);
  h.add(-5.0);  // pathological but must not crash or misindex
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(0.5), 1.0);  // bucket 0 reports lo
  EXPECT_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramTest, AboveHiClampsToLastBucket) {
  LatencyHistogram h(/*lo=*/1.0, /*hi=*/100.0, /*growth=*/2.0);
  h.add(1e12);
  h.add(1e15);
  EXPECT_EQ(h.count(), 2u);
  // Both land in the overflow bucket; the reported quantile is finite
  // and at least hi.
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 100.0);
  EXPECT_LT(q, 1e6);  // bounded by the bucket geometry, not the sample
}

TEST(HistogramTest, MergeOfSplitsEqualsWhole) {
  LatencyHistogram whole, a, b;
  Rng r(123);
  for (int i = 0; i < 20000; ++i) {
    const double x = r.lognormal(4.0, 1.5);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  // Summation order differs between the split and the whole stream, so
  // the mean agrees only to rounding.
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12 * whole.mean());
  // Bucket-exact merge: identical quantiles, not just close ones.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeRejectsMismatchedGeometry) {
  LatencyHistogram a(0.1, 1e8, 1.15);
  LatencyHistogram different_growth(0.1, 1e8, 1.2);
  LatencyHistogram different_lo(1.0, 1e8, 1.15);
  EXPECT_THROW(a.merge(different_growth), std::invalid_argument);
  EXPECT_THROW(a.merge(different_lo), std::invalid_argument);
}

TEST(StatsTest, MergeOfManySplitsEqualsWhole) {
  // Property backing the cross-shard aggregation: splitting a sample
  // stream across N shards and merging the shard stats reproduces the
  // whole-stream stats.
  Rng r(77);
  StreamingStats whole;
  StreamingStats shards[4];
  for (int i = 0; i < 10000; ++i) {
    const double x = r.lognormal(2.0, 1.0);
    whole.add(x);
    shards[i % 4].add(x);
  }
  StreamingStats merged;
  for (auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(),
              1e-6 * whole.variance());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

// --- Counter -------------------------------------------------------------

TEST(CounterTest, CountsAndSorts) {
  Counter c;
  c.add(5);
  c.add(5);
  c.add(7, 10);
  c.add(9);
  EXPECT_EQ(c.total(), 13u);
  EXPECT_EQ(c.distinct(), 3u);
  EXPECT_EQ(c.count_of(5), 2u);
  EXPECT_EQ(c.count_of(404), 0u);
  const auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 7u);
  EXPECT_EQ(sorted[0].second, 10u);
}

// --- Bitmap --------------------------------------------------------------

TEST(BitmapTest, SetClearPopcount) {
  Bitmap b(130);
  EXPECT_EQ(b.popcount(), 0u);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.popcount(), 3u);
  EXPECT_TRUE(b.test(64));
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.popcount(), 2u);
  b.set(0);  // idempotent
  EXPECT_EQ(b.popcount(), 2u);
}

TEST(BitmapTest, FirstClear) {
  Bitmap b(70, true);
  EXPECT_EQ(b.first_clear(), 70u);
  b.clear(65);
  EXPECT_EQ(b.first_clear(), 65u);
  b.clear(3);
  EXPECT_EQ(b.first_clear(), 3u);
}

TEST(BitmapTest, FillAndAllNone) {
  Bitmap b(100);
  EXPECT_TRUE(b.none());
  b.fill(true);
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.popcount(), 100u);
  b.fill(false);
  EXPECT_TRUE(b.none());
}

TEST(BitmapTest, AssignDispatches) {
  Bitmap b(8);
  b.assign(2, true);
  EXPECT_TRUE(b.test(2));
  b.assign(2, false);
  EXPECT_FALSE(b.test(2));
}

// --- LruMap --------------------------------------------------------------

TEST(LruMapTest, InsertTouchEvictOrder) {
  LruMap<int, int> m;
  m.insert(1, 10);
  m.insert(2, 20);
  m.insert(3, 30);
  EXPECT_EQ(m.lru()->first, 1);
  EXPECT_NE(m.touch(1), nullptr);  // 1 becomes MRU
  EXPECT_EQ(m.lru()->first, 2);
  auto victim = m.pop_lru();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->first, 2);
  EXPECT_EQ(m.size(), 2u);
}

TEST(LruMapTest, PeekDoesNotPromote) {
  LruMap<int, int> m;
  m.insert(1, 10);
  m.insert(2, 20);
  EXPECT_NE(m.peek(1), nullptr);
  EXPECT_EQ(m.lru()->first, 1);  // still LRU
}

TEST(LruMapTest, InsertExistingPromotesAndOverwrites) {
  LruMap<int, int> m;
  m.insert(1, 10);
  m.insert(2, 20);
  m.insert(1, 11);
  EXPECT_EQ(*m.peek(1), 11);
  EXPECT_EQ(m.lru()->first, 2);
  EXPECT_EQ(m.size(), 2u);
}

TEST(LruMapTest, EraseByKey) {
  LruMap<int, int> m;
  m.insert(1, 10);
  auto v = m.erase(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 10);
  EXPECT_FALSE(m.erase(1).has_value());
  EXPECT_TRUE(m.empty());
}

TEST(LruMapTest, ReverseIterationIsLruFirst) {
  LruMap<int, int> m;
  for (int i = 0; i < 5; ++i) m.insert(i, i);
  std::vector<int> order;
  for (auto it = m.rbegin(); it != m.rend(); ++it) order.push_back(it->first);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(LruMapTest, MissingKeyBehaviour) {
  LruMap<int, int> m;
  EXPECT_EQ(m.touch(42), nullptr);
  EXPECT_EQ(m.peek(42), nullptr);
  EXPECT_FALSE(m.pop_lru().has_value());
  EXPECT_EQ(m.lru(), nullptr);
}

// --- Table ---------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  // Separator line present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-7), "-7");
  EXPECT_EQ(Table::percent(0.1234, 1), "12.3%");
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace ssdse
