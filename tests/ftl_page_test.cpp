#include <stdexcept>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/ftl/page_ftl.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

NandConfig small_nand(std::uint32_t blocks = 64,
                      std::uint32_t pages_per_block = 16) {
  NandConfig cfg;
  cfg.num_blocks = blocks;
  cfg.pages_per_block = pages_per_block;
  return cfg;
}

TEST(PageFtlTest, LogicalSpaceSmallerThanPhysical) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_LT(ftl.logical_pages(), nand.config().total_pages());
  EXPECT_GT(ftl.logical_pages(), 0u);
}

TEST(PageFtlTest, WriteThenReadVerifiesInternally) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  // The FTL self-checks tags on read; no throw == data is intact.
  EXPECT_TRUE(ftl.write(5).ok());
  EXPECT_TRUE(ftl.read(5).ok());
  EXPECT_EQ(ftl.stats().host_reads, 1u);
  EXPECT_EQ(ftl.stats().host_writes, 1u);
}

TEST(PageFtlTest, UnwrittenReadIsCheap) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  const Micros t = ftl.read(3).latency;
  EXPECT_LT(t, nand.config().page_read);  // controller overhead only
}

TEST(PageFtlTest, OverwriteInvalidatesOldCopy) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_TRUE(ftl.write(1).ok());
  const auto programs_before = nand.stats().page_programs;
  EXPECT_TRUE(ftl.write(1).ok());  // out-of-place rewrite
  EXPECT_EQ(nand.stats().page_programs, programs_before + 1);
  EXPECT_TRUE(ftl.read(1).ok());  // newest version readable
}

TEST(PageFtlTest, OutOfRangeThrows) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_THROW((void)ftl.read(ftl.logical_pages()), std::out_of_range);
  EXPECT_THROW((void)ftl.write(ftl.logical_pages()), std::out_of_range);
  EXPECT_THROW((void)ftl.trim(ftl.logical_pages()), std::out_of_range);
}

TEST(PageFtlTest, SequentialOverwriteTriggersCheapGc) {
  NandArray nand(small_nand(32, 8));
  PageFtl ftl(nand);
  const Lpn n = ftl.logical_pages();
  // Three full sequential passes: whole blocks become invalid, so GC
  // should erase without copying.
  for (int pass = 0; pass < 3; ++pass) {
    for (Lpn p = 0; p < n; ++p) EXPECT_TRUE(ftl.write(p).ok());
  }
  EXPECT_GT(nand.stats().block_erases, 0u);
  EXPECT_EQ(ftl.stats().gc_page_copies, 0u);
  const double wa = ftl.stats().write_amplification(nand.stats());
  EXPECT_NEAR(wa, 1.0, 1e-9);
}

TEST(PageFtlTest, RandomOverwriteCausesWriteAmplification) {
  NandArray nand(small_nand(64, 16));
  PageFtl ftl(nand);
  Rng rng(9);
  const Lpn n = ftl.logical_pages();
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
  }
  EXPECT_GT(ftl.stats().gc_page_copies, 0u);
  EXPECT_GT(ftl.stats().write_amplification(nand.stats()), 1.01);
}

TEST(PageFtlTest, AllDataSurvivesGcChurn) {
  NandArray nand(small_nand(48, 8));
  PageFtl ftl(nand);
  Rng rng(10);
  const Lpn n = ftl.logical_pages();
  std::unordered_set<Lpn> written;
  for (int i = 0; i < 10000; ++i) {
    const Lpn p = rng.next_below(n);
    EXPECT_TRUE(ftl.write(p).ok());
    written.insert(p);
  }
  // Every written page must read back its newest version (self-checked).
  for (Lpn p : written) EXPECT_TRUE(ftl.read(p).ok());
}

TEST(PageFtlTest, TrimFreesAndInvalidates) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_TRUE(ftl.write(7).ok());
  (void)ftl.trim(7);
  EXPECT_EQ(ftl.stats().host_trims, 1u);
  // Post-trim read is an unmapped read (cheap, no tag check).
  const Micros t = ftl.read(7).latency;
  EXPECT_LT(t, nand.config().page_read);
}

TEST(PageFtlTest, TrimmedSpaceReducesGcWork) {
  // Workload A: overwrite everything twice. Workload B: trim before the
  // second pass — GC should copy nothing.
  auto run = [](bool trim_first) {
    NandArray nand(small_nand(32, 8));
    PageFtl ftl(nand);
    const Lpn n = ftl.logical_pages();
    for (Lpn p = 0; p < n; ++p) EXPECT_TRUE(ftl.write(p).ok());
    if (trim_first) {
      for (Lpn p = 0; p < n; ++p) (void)ftl.trim(p);
    }
    // Random second pass (hostile to GC without TRIM).
    Rng rng(11);
    for (Lpn i = 0; i < n; ++i) EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
    return ftl.stats().gc_page_copies;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(PageFtlTest, GcLatencyChargedToWrites) {
  NandArray nand(small_nand(16, 8));
  PageFtl ftl(nand);
  Rng rng(12);
  const Lpn n = ftl.logical_pages();
  Micros max_write = micros(0);
  for (int i = 0; i < 5000; ++i) {
    max_write = std::max(max_write, ftl.write(rng.next_below(n)).latency);
  }
  // Some write must have absorbed an erase (1.5 ms).
  EXPECT_GT(max_write, nand.config().block_erase);
}

TEST(PageFtlTest, FreePoolNeverBelowWatermarkAfterWrite) {
  FtlConfig cfg;
  cfg.gc_low_watermark = 3;
  NandArray nand(small_nand(32, 8));
  PageFtl ftl(nand, cfg);
  Rng rng(13);
  const Lpn n = ftl.logical_pages();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(ftl.write(rng.next_below(n)).ok());
    EXPECT_GE(ftl.free_blocks(), cfg.gc_low_watermark);
  }
}

TEST(PageFtlTest, TooSmallNandRejected) {
  NandArray nand(small_nand(4, 4));
  EXPECT_THROW(PageFtl ftl(nand), std::invalid_argument);
}

TEST(PageFtlTest, MeanAccessPositiveAfterTraffic) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_TRUE(ftl.write(0).ok());
  EXPECT_TRUE(ftl.read(0).ok());
  EXPECT_GT(ftl.stats().mean_access().value(), 0.0);
}

TEST(PageFtlTest, WearBucketsZeroBeforeFirstCompaction) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_EQ(ftl.heap_compactions(), 0u);
  for (const std::uint64_t c : ftl.wear_buckets()) EXPECT_EQ(c, 0u);
}

TEST(PageFtlTest, WearBucketsTrackCompactionScan) {
  // Random overwrites grow the lazy-deletion heap past its compaction
  // limit; the rebuild scan bins every Used block's erase count.
  NandArray nand(small_nand(32, 8));
  PageFtl ftl(nand);
  Rng rng(21);
  const Lpn n = ftl.logical_pages();
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n)).ok());
  }
  ASSERT_GT(ftl.heap_compactions(), 0u);
  std::uint64_t total = 0;
  for (const std::uint64_t c : ftl.wear_buckets()) total += c;
  // Snapshot of the last compaction: one bin entry per Used block.
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, nand.config().num_blocks);
  // Binning is log2(erases + 1); no block can have erased more often
  // than the total erase count, so buckets past that log are empty.
  std::uint64_t max_bucket = 0;
  for (std::uint64_t w = nand.stats().block_erases + 1; w > 1; w >>= 1) {
    ++max_bucket;
  }
  const auto& buckets = ftl.wear_buckets();
  for (std::size_t i = max_bucket + 1; i < PageFtl::kWearBuckets; ++i) {
    EXPECT_EQ(buckets[i], 0u) << "bucket " << i;
  }
}

TEST(PageFtlTest, WearBucketsDeterministicAcrossRuns) {
  std::array<std::uint64_t, PageFtl::kWearBuckets> first{};
  std::uint64_t first_compactions = 0;
  for (int run = 0; run < 2; ++run) {
    NandArray nand(small_nand(32, 8));
    PageFtl ftl(nand);
    Rng rng(22);
    const Lpn n = ftl.logical_pages();
    for (int i = 0; i < 20'000; ++i) {
      ASSERT_TRUE(ftl.write(rng.next_below(n)).ok());
    }
    if (run == 0) {
      first = ftl.wear_buckets();
      first_compactions = ftl.heap_compactions();
    } else {
      EXPECT_EQ(ftl.wear_buckets(), first);
      EXPECT_EQ(ftl.heap_compactions(), first_compactions);
    }
  }
}

}  // namespace
}  // namespace ssdse
