#include <stdexcept>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/ftl/page_ftl.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

NandConfig small_nand(std::uint32_t blocks = 64,
                      std::uint32_t pages_per_block = 16) {
  NandConfig cfg;
  cfg.num_blocks = blocks;
  cfg.pages_per_block = pages_per_block;
  return cfg;
}

TEST(PageFtlTest, LogicalSpaceSmallerThanPhysical) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_LT(ftl.logical_pages(), nand.config().total_pages());
  EXPECT_GT(ftl.logical_pages(), 0u);
}

TEST(PageFtlTest, WriteThenReadVerifiesInternally) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  // The FTL self-checks tags on read; no throw == data is intact.
  ftl.write(5);
  EXPECT_NO_THROW(ftl.read(5));
  EXPECT_EQ(ftl.stats().host_reads, 1u);
  EXPECT_EQ(ftl.stats().host_writes, 1u);
}

TEST(PageFtlTest, UnwrittenReadIsCheap) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  const Micros t = ftl.read(3).latency;
  EXPECT_LT(t, nand.config().page_read);  // controller overhead only
}

TEST(PageFtlTest, OverwriteInvalidatesOldCopy) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  ftl.write(1);
  const auto programs_before = nand.stats().page_programs;
  ftl.write(1);  // out-of-place rewrite
  EXPECT_EQ(nand.stats().page_programs, programs_before + 1);
  EXPECT_NO_THROW(ftl.read(1));  // newest version readable
}

TEST(PageFtlTest, OutOfRangeThrows) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  EXPECT_THROW(ftl.read(ftl.logical_pages()), std::out_of_range);
  EXPECT_THROW(ftl.write(ftl.logical_pages()), std::out_of_range);
  EXPECT_THROW(ftl.trim(ftl.logical_pages()), std::out_of_range);
}

TEST(PageFtlTest, SequentialOverwriteTriggersCheapGc) {
  NandArray nand(small_nand(32, 8));
  PageFtl ftl(nand);
  const Lpn n = ftl.logical_pages();
  // Three full sequential passes: whole blocks become invalid, so GC
  // should erase without copying.
  for (int pass = 0; pass < 3; ++pass) {
    for (Lpn p = 0; p < n; ++p) ftl.write(p);
  }
  EXPECT_GT(nand.stats().block_erases, 0u);
  EXPECT_EQ(ftl.stats().gc_page_copies, 0u);
  const double wa = ftl.stats().write_amplification(nand.stats());
  EXPECT_NEAR(wa, 1.0, 1e-9);
}

TEST(PageFtlTest, RandomOverwriteCausesWriteAmplification) {
  NandArray nand(small_nand(64, 16));
  PageFtl ftl(nand);
  Rng rng(9);
  const Lpn n = ftl.logical_pages();
  for (int i = 0; i < 20000; ++i) {
    ftl.write(rng.next_below(n));
  }
  EXPECT_GT(ftl.stats().gc_page_copies, 0u);
  EXPECT_GT(ftl.stats().write_amplification(nand.stats()), 1.01);
}

TEST(PageFtlTest, AllDataSurvivesGcChurn) {
  NandArray nand(small_nand(48, 8));
  PageFtl ftl(nand);
  Rng rng(10);
  const Lpn n = ftl.logical_pages();
  std::unordered_set<Lpn> written;
  for (int i = 0; i < 10000; ++i) {
    const Lpn p = rng.next_below(n);
    ftl.write(p);
    written.insert(p);
  }
  // Every written page must read back its newest version (self-checked).
  for (Lpn p : written) EXPECT_NO_THROW(ftl.read(p));
}

TEST(PageFtlTest, TrimFreesAndInvalidates) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  ftl.write(7);
  ftl.trim(7);
  EXPECT_EQ(ftl.stats().host_trims, 1u);
  // Post-trim read is an unmapped read (cheap, no tag check).
  const Micros t = ftl.read(7).latency;
  EXPECT_LT(t, nand.config().page_read);
}

TEST(PageFtlTest, TrimmedSpaceReducesGcWork) {
  // Workload A: overwrite everything twice. Workload B: trim before the
  // second pass — GC should copy nothing.
  auto run = [](bool trim_first) {
    NandArray nand(small_nand(32, 8));
    PageFtl ftl(nand);
    const Lpn n = ftl.logical_pages();
    for (Lpn p = 0; p < n; ++p) ftl.write(p);
    if (trim_first) {
      for (Lpn p = 0; p < n; ++p) ftl.trim(p);
    }
    // Random second pass (hostile to GC without TRIM).
    Rng rng(11);
    for (Lpn i = 0; i < n; ++i) ftl.write(rng.next_below(n));
    return ftl.stats().gc_page_copies;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(PageFtlTest, GcLatencyChargedToWrites) {
  NandArray nand(small_nand(16, 8));
  PageFtl ftl(nand);
  Rng rng(12);
  const Lpn n = ftl.logical_pages();
  Micros max_write = 0;
  for (int i = 0; i < 5000; ++i) {
    max_write = std::max(max_write, ftl.write(rng.next_below(n)).latency);
  }
  // Some write must have absorbed an erase (1.5 ms).
  EXPECT_GT(max_write, nand.config().block_erase);
}

TEST(PageFtlTest, FreePoolNeverBelowWatermarkAfterWrite) {
  FtlConfig cfg;
  cfg.gc_low_watermark = 3;
  NandArray nand(small_nand(32, 8));
  PageFtl ftl(nand, cfg);
  Rng rng(13);
  const Lpn n = ftl.logical_pages();
  for (int i = 0; i < 5000; ++i) {
    ftl.write(rng.next_below(n));
    EXPECT_GE(ftl.free_blocks(), cfg.gc_low_watermark);
  }
}

TEST(PageFtlTest, TooSmallNandRejected) {
  NandArray nand(small_nand(4, 4));
  EXPECT_THROW(PageFtl ftl(nand), std::invalid_argument);
}

TEST(PageFtlTest, MeanAccessPositiveAfterTraffic) {
  NandArray nand(small_nand());
  PageFtl ftl(nand);
  ftl.write(0);
  ftl.read(0);
  EXPECT_GT(ftl.stats().mean_access(), 0.0);
}

}  // namespace
}  // namespace ssdse
