// Extension bench: shard replication and the tail-tolerant broker
// (DESIGN.md §15). Sweeps {R=1,2,3} x {fault-free, faulty primary} x
// {1x, 2x offered load} through the open-loop traffic harness, then
// gates the three policy headlines with targeted experiments:
//
//  (a) *Hedging cuts the tail.* With a latency-spiking primary and a
//      clean sibling, enabling hedged requests lowers the broker's
//      closed-loop p99 versus the identical no-hedge fleet.
//  (b) *Retries restore coverage.* Where the PR 4 shard-deadline path
//      drops slow shards (coverage < 1), a retry budget converts every
//      drop back into a full answer (coverage == 1.0) — the retried
//      attempt replays against the now-warm result cache well inside
//      the deadline.
//  (c) *Failover keeps the SLO.* At 1x offered load a primary-only
//      (R=1) fleet with a degraded replica breaches its p99 SLO;
//      health-driven failover (R=2) routes around the sick replica and
//      keeps the verdict ok.
//
// Determinism: the faulty R=2 1x cell is re-run on a fresh cluster and
// must reproduce the windowed-series fingerprint and every policy
// counter bit for bit.
//
// Emits machine-readable JSON (SSDSE_BENCH_OUT, default
// BENCH_PR9.json) validated by scripts/check_bench_json.py, and the
// faulty R=2 1x cell's run report with the "replication" section when
// SSDSE_TELEMETRY_OUT is set.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/hybrid/traffic.hpp"
#include "src/telemetry/json_writer.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

constexpr double kUtilizationTarget = 0.75;
constexpr std::uint32_t kServers = 4;
constexpr std::size_t kQueueCapacity = 256;
constexpr Micros kWindow = kSecond;

ClusterConfig base_cluster() {
  ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.total_docs = 400'000;
  cfg.shard_template.set_memory_budget(4 * MiB);
  cfg.shard_template.training_queries = 500;
  return cfg;
}

/// The standard policy stack for replicated cells: retries with the
/// default capped-exponential backoff, hedging past `hedge_delay`, and
/// health-driven failover. R=1 cells keep retries only (hedging and
/// failover need a sibling).
ReplicationConfig policy_stack(std::uint32_t factor, Micros hedge_delay) {
  ReplicationConfig rep;
  rep.replication_factor = factor;
  rep.retry_budget = 2;
  rep.hedge_delay = factor > 1 ? hedge_delay : Micros{};
  rep.failover = factor > 1;
  return rep;
}

/// One degraded replica: slot 0 of every shard pays `spike` extra on
/// each index-store access plus a trickle of uncorrectable reads. The
/// siblings (slots > 0) stay clean — exactly the asymmetry hedging and
/// failover exploit.
void inject_sick_primary(ClusterConfig& cfg, double spike_rate,
                         Micros spike) {
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    ReplicaFaultOverride sick;
    sick.shard = s;
    sick.replica = 0;
    sick.hdd.read_unc_rate = 0.02;
    sick.hdd.latency_spike_rate = spike_rate;
    sick.hdd.spike_latency = spike;
    sick.hdd.seed = 0xbad'5eed'0ull + s;
    cfg.replica_faults.push_back(sick);
  }
}

struct Calibration {
  std::uint64_t queries = 0;
  Micros mean_service = micros(0);
  Micros p99_service = micros(0);
  Micros median_slowest_shard = micros(0);  // deadline anchor for gate (b)
  double capacity_qps = 0;          // kUtilizationTarget * saturation
};

Calibration calibrate(std::uint64_t queries) {
  SearchCluster cluster(base_cluster());
  ClusterTrafficTarget target(cluster);
  LatencyHistogram service;
  StreamingStats stats;
  std::vector<Micros> slowest;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const Query q = cluster.generator().next();
    const Micros s = target.serve(q);
    service.add(s);
    stats.add(s);
  }
  // Separate short probe for the deadline anchor (serve() hides the
  // per-shard split).
  SearchCluster probe(base_cluster());
  for (int i = 0; i < 100; ++i) {
    slowest.push_back(probe.execute(probe.generator().next()).slowest_shard);
  }
  std::nth_element(slowest.begin(), slowest.begin() + slowest.size() / 2,
                   slowest.end());

  Calibration cal;
  cal.queries = queries;
  cal.mean_service = micros(stats.mean());
  cal.p99_service = micros(service.quantile(0.99));
  cal.median_slowest_shard = slowest[slowest.size() / 2];
  cal.capacity_qps = kUtilizationTarget * kServers * kSecond.value() /
                     std::max(cal.mean_service.value(), 1.0);
  return cal;
}

std::vector<telemetry::SloSpec> make_slos(const Calibration& cal) {
  telemetry::SloSpec p99;
  p99.name = "p99_latency";
  p99.quantile = 0.99;
  p99.threshold_us = std::max(5.0 * cal.p99_service.value(), ms(2).value());
  p99.compliance_windows = 10;
  return {p99};
}

// ---- Sweep cells ------------------------------------------------------

struct SweepCell {
  const char* name;
  std::uint32_t factor;
  bool faulty;
  double multiplier;
};

struct CellOutcome {
  const SweepCell* cell = nullptr;
  TrafficResult result{kWindow};
  ReplicationSnapshot snap;
  std::uint64_t fingerprint = 0;
  bool conservation = false;
};

CellOutcome run_cell(const SweepCell& cell, const Calibration& cal,
                     std::uint64_t offered, Micros spike,
                     bool emit_report) {
  ClusterConfig cfg = base_cluster();
  cfg.replication = policy_stack(cell.factor, 2.0 * cal.p99_service);
  if (cell.faulty) inject_sick_primary(cfg, 0.1, spike);
  SearchCluster cluster(cfg);
  ClusterTrafficTarget target(cluster);

  TrafficConfig tcfg;
  tcfg.arrival.base_qps = cell.multiplier * cal.capacity_qps;
  tcfg.arrival.seed = 4242;
  tcfg.offered = offered;
  tcfg.servers = kServers;
  tcfg.queue_capacity = kQueueCapacity;
  tcfg.window = kWindow;
  tcfg.slos = make_slos(cal);
  tcfg.worst_n = 16;

  CellOutcome out;
  out.cell = &cell;
  out.result = run_traffic(target, cluster.generator(), tcfg);
  out.snap = cluster.replication_snapshot();
  out.fingerprint = out.result.series_fingerprint();
  out.conservation =
      out.result.served + out.result.shed == out.result.offered;
  if (emit_report) {
    maybe_write_report(cluster.shard(0), "ext_replica", &out.result,
                       &out.snap);
  }
  return out;
}

// ---- Gate (a): hedging cuts the closed-loop broker p99 ---------------

struct HedgeGate {
  Micros p99_no_hedge = micros(0);
  Micros p99_hedge = micros(0);
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  bool pass = false;
};

Micros closed_loop_p99(const ClusterConfig& cfg, std::uint64_t queries,
                       ReplicationSnapshot* snap) {
  SearchCluster cluster(cfg);
  LatencyHistogram hist;
  for (std::uint64_t i = 0; i < queries; ++i) {
    hist.add(cluster.execute(cluster.generator().next()).response);
  }
  if (snap != nullptr) *snap = cluster.replication_snapshot();
  return micros(hist.quantile(0.99));
}

HedgeGate run_hedge_gate(const Calibration& cal, std::uint64_t queries,
                         Micros spike) {
  ClusterConfig cfg = base_cluster();
  inject_sick_primary(cfg, 0.25, spike);
  cfg.replication.replication_factor = 2;  // no hedge, no failover

  HedgeGate g;
  g.p99_no_hedge = closed_loop_p99(cfg, queries, nullptr);

  cfg.replication.hedge_delay = 2.0 * cal.p99_service;
  ReplicationSnapshot snap;
  g.p99_hedge = closed_loop_p99(cfg, queries, &snap);
  g.hedges = snap.hedges;
  g.hedge_wins = snap.hedge_wins;
  g.pass = g.p99_hedge < g.p99_no_hedge && g.hedges > 0 && g.hedge_wins > 0;
  return g;
}

// ---- Gate (b): retries restore coverage under the deadline -----------

struct RetryGate {
  Micros deadline = micros(0);
  double coverage_no_retry = 1.0;
  double coverage_retry = 0.0;
  std::uint64_t retries = 0;
  bool pass = false;
};

RetryGate run_retry_gate(const Calibration& cal, std::uint64_t queries) {
  RetryGate g;
  g.deadline = cal.median_slowest_shard;

  ClusterConfig cfg = base_cluster();
  cfg.shard_deadline = g.deadline;
  {
    SearchCluster dropped(cfg);
    dropped.run(queries);
    g.coverage_no_retry = dropped.replication_snapshot().coverage_mean;
  }
  cfg.replication.retry_budget = 2;
  SearchCluster retried(cfg);
  retried.run(queries);
  const auto snap = retried.replication_snapshot();
  g.coverage_retry = snap.coverage_mean;
  g.retries = snap.retries;
  g.pass = g.coverage_no_retry < 1.0 && g.coverage_retry == 1.0 &&
           g.retries > 0;
  return g;
}

// ---- Gate (c): failover keeps the 1x SLO ok --------------------------

struct FailoverGate {
  std::string primary_only_state = "ok";
  std::uint64_t primary_only_breaches = 0;
  std::string failover_state = "breach";
  std::uint64_t failover_breaches = 0;
  std::uint64_t failovers = 0;
  bool pass = false;
};

/// 1x traffic against an existing cluster, after a short closed-loop
/// warmup: production fleets do not take SLO verdicts on ice-cold
/// caches, and the warmup also lets the broker's health EWMAs find the
/// sick replica before the clock starts. Both gate arms get the same
/// treatment.
TrafficResult slo_run(SearchCluster& cluster, const Calibration& cal,
                      std::uint64_t offered) {
  cluster.run(200);  // warmup: caches + replica health state
  ClusterTrafficTarget target(cluster);
  TrafficConfig tcfg;
  tcfg.arrival.base_qps = cal.capacity_qps;  // 1x
  tcfg.arrival.seed = 4242;
  tcfg.offered = offered;
  tcfg.servers = kServers;
  tcfg.queue_capacity = kQueueCapacity;
  tcfg.window = kWindow;
  tcfg.slos = make_slos(cal);
  tcfg.worst_n = 16;
  return run_traffic(target, cluster.generator(), tcfg);
}

FailoverGate run_failover_gate(const Calibration& cal,
                               std::uint64_t offered, Micros spike) {
  // Always-slow primary: every index-store access on slot 0 pays the
  // spike, so its EWMA pins high after the first touch and failover
  // locks traffic onto the clean sibling.
  FailoverGate g;
  ClusterConfig cfg = base_cluster();
  inject_sick_primary(cfg, 1.0, spike);

  SearchCluster primary_only(cfg);
  const TrafficResult primary = slo_run(primary_only, cal, offered);
  g.primary_only_state = telemetry::to_string(primary.slo.front().state);
  g.primary_only_breaches = primary.slo.front().breach_windows;

  cfg.replication.replication_factor = 2;
  cfg.replication.failover = true;
  SearchCluster cluster(cfg);
  const TrafficResult failover = slo_run(cluster, cal, offered);
  g.failover_state = telemetry::to_string(failover.slo.front().state);
  g.failover_breaches = failover.slo.front().breach_windows;
  g.failovers = cluster.replication_snapshot().failovers;

  g.pass = g.primary_only_breaches > 0 && g.failover_breaches == 0 &&
           failover.slo.front().state != telemetry::SloState::kBreach &&
           g.failovers > 0;
  return g;
}

}  // namespace

int main() {
  print_environment("Extension — shard replication & tail-tolerant broker");
  const std::uint64_t offered = default_queries(6'000);
  const std::uint64_t gate_queries =
      std::max<std::uint64_t>(offered / 2, 1'000);
  const std::uint64_t calibration_queries =
      std::min<std::uint64_t>(2'000, std::max<std::uint64_t>(offered / 4, 500));

  std::printf("calibrating capacity (%llu closed-loop queries)...\n",
              static_cast<unsigned long long>(calibration_queries));
  const Calibration cal = calibrate(calibration_queries);
  const Micros spike = std::max(20.0 * cal.p99_service, ms(20));
  std::printf(
      "  mean service %.2f ms, p99 %.2f ms, median slowest shard %.2f ms\n"
      "  => capacity %.0f q/s, fault spike %.1f ms\n\n",
      cal.mean_service / kMillisecond, cal.p99_service / kMillisecond,
      cal.median_slowest_shard / kMillisecond, cal.capacity_qps,
      spike / kMillisecond);

  const std::vector<SweepCell> kCells = {
      {"r1_clean_1x", 1, false, 1.0},   {"r1_faulty_1x", 1, true, 1.0},
      {"r2_clean_1x", 2, false, 1.0},   {"r2_faulty_1x", 2, true, 1.0},
      {"r3_clean_1x", 3, false, 1.0},   {"r3_faulty_1x", 3, true, 1.0},
      {"r1_faulty_2x", 1, true, 2.0},   {"r2_faulty_2x", 2, true, 2.0},
      {"r3_faulty_2x", 3, true, 2.0},
  };

  std::vector<CellOutcome> cells;
  for (const SweepCell& c : kCells) {
    std::printf("running %-13s (R=%u, %s, %.0fx)...\n", c.name, c.factor,
                c.faulty ? "faulty" : "clean", c.multiplier);
    cells.push_back(
        run_cell(c, cal, offered, spike,
                 /*emit_report=*/std::strcmp(c.name, "r2_faulty_1x") == 0));
  }

  std::printf("re-running r2_faulty_1x for determinism...\n\n");
  const SweepCell* repeat_cell = &kCells[3];
  const CellOutcome repeat =
      run_cell(*repeat_cell, cal, offered, spike, /*emit_report=*/false);
  const CellOutcome& first = cells[3];
  const bool determinism =
      repeat.fingerprint == first.fingerprint &&
      repeat.snap.retries == first.snap.retries &&
      repeat.snap.hedges == first.snap.hedges &&
      repeat.snap.failovers == first.snap.failovers &&
      repeat.snap.dispatches == first.snap.dispatches;

  Table t({"cell", "served", "shed", "p99 (ms)", "coverage", "retries",
           "hedges", "failovers", "p99 SLO"});
  for (const CellOutcome& c : cells) {
    const TrafficResult& r = c.result;
    t.add_row({c.cell->name, Table::num(static_cast<double>(r.served), 0),
               Table::num(static_cast<double>(r.shed), 0),
               fmt_ms(micros(r.response_hist.quantile(0.99))),
               Table::num(c.snap.coverage_mean, 4),
               Table::num(static_cast<double>(c.snap.retries), 0),
               Table::num(static_cast<double>(c.snap.hedges), 0),
               Table::num(static_cast<double>(c.snap.failovers), 0),
               telemetry::to_string(r.slo.front().state)});
  }
  t.print();

  std::printf("\ngate (a): hedging vs no-hedge under a spiky primary...\n");
  const HedgeGate hedge = run_hedge_gate(cal, gate_queries, spike);
  std::printf("  p99 %.2f ms -> %.2f ms (%llu hedges, %llu wins) %s\n",
              hedge.p99_no_hedge / kMillisecond,
              hedge.p99_hedge / kMillisecond,
              static_cast<unsigned long long>(hedge.hedges),
              static_cast<unsigned long long>(hedge.hedge_wins),
              hedge.pass ? "ok" : "FAIL");

  std::printf("gate (b): retry budget vs the PR 4 deadline drop path...\n");
  const RetryGate retry = run_retry_gate(cal, gate_queries);
  std::printf("  coverage %.4f -> %.4f (%llu retries, deadline %.2f ms) %s\n",
              retry.coverage_no_retry, retry.coverage_retry,
              static_cast<unsigned long long>(retry.retries),
              retry.deadline / kMillisecond, retry.pass ? "ok" : "FAIL");

  std::printf("gate (c): failover vs primary-only at 1x load...\n");
  const FailoverGate failover = run_failover_gate(cal, offered, spike);
  std::printf(
      "  primary-only %s (%llu breach windows), failover %s "
      "(%llu failovers) %s\n",
      failover.primary_only_state.c_str(),
      static_cast<unsigned long long>(failover.primary_only_breaches),
      failover.failover_state.c_str(),
      static_cast<unsigned long long>(failover.failovers),
      failover.pass ? "ok" : "FAIL");

  bool conservation = true;
  for (const CellOutcome& c : cells) conservation = conservation && c.conservation;
  conservation = conservation && repeat.conservation;
  const bool pass = hedge.pass && retry.pass && failover.pass &&
                    conservation && determinism;
  std::printf(
      "\ngates: hedge %s, retry %s, failover %s, conservation %s, "
      "determinism %s\n",
      hedge.pass ? "ok" : "FAIL", retry.pass ? "ok" : "FAIL",
      failover.pass ? "ok" : "FAIL", conservation ? "ok" : "FAIL",
      determinism ? "ok" : "FAIL");

  // ---- BENCH_PR9.json -------------------------------------------------
  const ReplicationConfig sched_ref = policy_stack(2, micros(0));
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("ext_replica");
  w.key("schema_version");
  w.value(std::uint64_t{1});
  w.key("offered_per_cell");
  w.value(offered);
  w.key("servers");
  w.value(static_cast<std::uint64_t>(kServers));
  w.key("window_us");
  w.value(kWindow.value());
  w.key("calibration");
  w.begin_object();
  w.key("queries");
  w.value(cal.queries);
  w.key("mean_service_us");
  w.value(cal.mean_service.value());
  w.key("p99_service_us");
  w.value(cal.p99_service.value());
  w.key("median_slowest_shard_us");
  w.value(cal.median_slowest_shard.value());
  w.key("capacity_qps");
  w.value(cal.capacity_qps);
  w.key("fault_spike_us");
  w.value(spike.value());
  w.end_object();
  w.key("backoff_schedule_us");
  w.begin_array();
  for (std::uint32_t k = 0; k < sched_ref.retry_budget; ++k) {
    w.value(sched_ref.backoff_at(k).value());
  }
  w.end_array();
  w.key("cells");
  w.begin_array();
  for (const CellOutcome& c : cells) {
    const TrafficResult& r = c.result;
    w.begin_object();
    w.key("name");
    w.value(c.cell->name);
    w.key("replication_factor");
    w.value(static_cast<std::uint64_t>(c.cell->factor));
    w.key("faulty");
    w.value(c.cell->faulty);
    w.key("multiplier");
    w.value(c.cell->multiplier);
    w.key("offered");
    w.value(r.offered);
    w.key("served");
    w.value(r.served);
    w.key("shed");
    w.value(r.shed);
    w.key("conservation");
    w.value(c.conservation);
    w.key("response_p50_us");
    w.value(r.response_hist.quantile(0.50));
    w.key("response_p99_us");
    w.value(r.response_hist.quantile(0.99));
    w.key("coverage_mean");
    w.value(c.snap.coverage_mean);
    w.key("dispatches");
    w.value(c.snap.dispatches);
    w.key("retries");
    w.value(c.snap.retries);
    w.key("hedges");
    w.value(c.snap.hedges);
    w.key("hedge_wins");
    w.value(c.snap.hedge_wins);
    w.key("failovers");
    w.value(c.snap.failovers);
    w.key("shards_failed");
    w.value(c.snap.shards_failed);
    w.key("slo_state");
    w.value(telemetry::to_string(r.slo.front().state));
    w.key("breach_windows");
    w.value(r.slo.front().breach_windows);
    w.key("fingerprint");
    w.value(c.fingerprint);
    w.end_object();
  }
  w.end_array();
  w.key("determinism");
  w.begin_object();
  w.key("cell");
  w.value(repeat_cell->name);
  w.key("fingerprint_a");
  w.value(first.fingerprint);
  w.key("fingerprint_b");
  w.value(repeat.fingerprint);
  w.key("match");
  w.value(determinism);
  w.end_object();
  w.key("gates");
  w.begin_object();
  w.key("hedge_cuts_p99");
  w.begin_object();
  w.key("p99_no_hedge_us");
  w.value(hedge.p99_no_hedge.value());
  w.key("p99_hedge_us");
  w.value(hedge.p99_hedge.value());
  w.key("hedges");
  w.value(hedge.hedges);
  w.key("hedge_wins");
  w.value(hedge.hedge_wins);
  w.key("pass");
  w.value(hedge.pass);
  w.end_object();
  w.key("retries_restore_coverage");
  w.begin_object();
  w.key("deadline_us");
  w.value(retry.deadline.value());
  w.key("coverage_no_retry");
  w.value(retry.coverage_no_retry);
  w.key("coverage_retry");
  w.value(retry.coverage_retry);
  w.key("retries");
  w.value(retry.retries);
  w.key("pass");
  w.value(retry.pass);
  w.end_object();
  w.key("failover_keeps_slo");
  w.begin_object();
  w.key("primary_only_state");
  w.value(failover.primary_only_state);
  w.key("primary_only_breach_windows");
  w.value(failover.primary_only_breaches);
  w.key("failover_state");
  w.value(failover.failover_state);
  w.key("failover_breach_windows");
  w.value(failover.failover_breaches);
  w.key("failovers");
  w.value(failover.failovers);
  w.key("pass");
  w.value(failover.pass);
  w.end_object();
  w.key("conservation");
  w.value(conservation);
  w.key("determinism");
  w.value(determinism);
  w.key("pass");
  w.value(pass);
  w.end_object();
  w.end_object();

  const char* out = std::getenv("SSDSE_BENCH_OUT");
  if (!out) out = "BENCH_PR9.json";
  FILE* f = std::fopen(out, "w");
  if (!f) {
    std::fprintf(stderr, "ext_replica: cannot write %s\n", out);
    return 1;
  }
  const std::string& json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out);

  return pass ? 0 : 1;
}
