// PR 7 gate bench: compressed posting blocks + block-max pruning
// (DESIGN.md §13), emitted as BENCH_PR7.json and validated by
// scripts/check_bench_json.py in CI.
//
// Four sections, each a hard gate:
//  * compression — encoded vs raw posting bytes on the perf_driver daat
//    corpus; the block-packed ratio must be >= 2.5x;
//  * pruning     — the exhaustive DaatProcessor must reproduce the
//    pinned PR 2 fingerprint (at the full 20k-query count), the pruned
//    MaxScoreDaatProcessor must return bit-identical top-K per query,
//    and its q/s must beat the PR 2 baseline floor (Release builds);
//  * lru_map     — LruMap vs FlatLruMap micro-bench on the MemListCache
//    op mix; eviction order must match exactly;
//  * a daat_skip trace span + daat.pruning.* registry counters give the
//    new observability surfaces a live producer.
//
// Override the query count with SSDSE_DAAT_QUERIES; output with
// SSDSE_BENCH_OUT.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.hpp"
#include "src/engine/daat.hpp"
#include "src/index/block_postings.hpp"
#include "src/telemetry/registry.hpp"
#include "src/telemetry/tracer.hpp"
#include "src/util/flat_lru_map.hpp"
#include "src/util/lru_map.hpp"
#include "src/util/rng.hpp"
#include "src/workload/query_log.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

// ssdse-lint: allow(nondeterminism) wall-clock measures real throughput only
using Clock = std::chrono::steady_clock;

/// PR 2 daat-phase baseline on the reference machine; the pruned path
/// must beat it outright, decode cost included.
constexpr double kBaselineQps = 2413.0;
/// The daat fingerprint pinned since PR 2 (20k queries).
constexpr std::uint64_t kPinnedFingerprint = 9983495460346675520ull;
constexpr std::uint64_t kFullQueries = 20'000;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::uint64_t env_count(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

/// The perf_driver daat workload, bit-for-bit (same corpus seed, same
/// query log), so fingerprints and baselines carry over.
struct DaatWorkload {
  explicit DaatWorkload(std::uint64_t queries) {
    CorpusConfig cc;
    cc.num_docs = 40'000;
    cc.vocab_size = 2'000;
    cc.terms_per_doc = 60;
    cc.max_df_fraction = 0.10;
    cc.seed = 2012;
    Rng rng(99);
    corpus = std::make_unique<MaterializedCorpus>(cc, rng);
    index = std::make_unique<MaterializedIndex>(*corpus);

    QueryLogConfig qc;
    qc.distinct_queries = 50'000;
    qc.vocab_size = cc.vocab_size;
    qc.min_terms = 2;
    qc.max_terms = 3;
    qc.seed = 17;
    QueryLogGenerator gen(qc);
    batch.reserve(queries);
    for (std::uint64_t i = 0; i < queries; ++i) batch.push_back(gen.next());
  }

  std::unique_ptr<MaterializedCorpus> corpus;
  std::unique_ptr<MaterializedIndex> index;
  std::vector<Query> batch;
};

struct CompressionResult {
  Bytes raw_bytes = 0;
  Bytes packed_bytes = 0;
  Bytes svb_bytes = 0;
  double packed_ratio = 0;
  double svb_ratio = 0;
  std::uint64_t blocks = 0;
  bool pass = false;
};

CompressionResult run_compression(const MaterializedIndex& index) {
  CompressionResult c;
  c.raw_bytes = index.raw_posting_bytes();
  // The index's own store is block-packed (raw corpus codec falls back
  // to it); encode the stream-vbyte variant side by side.
  c.packed_bytes = index.block_store().encoded_bytes();
  c.blocks = index.block_store().total_blocks();
  BlockPostingStore svb(CodecKind::kStreamVByte);
  svb.reserve(index.vocab_size(), index.block_store().total_postings());
  for (TermId t{}; t < TermId{index.vocab_size()}; ++t) {
    const DocSortedView v = index.doc_sorted(t);
    svb.add_list(v.postings(), v.idf());
  }
  c.svb_bytes = svb.encoded_bytes();
  c.packed_ratio = static_cast<double>(c.raw_bytes) /
                   static_cast<double>(c.packed_bytes);
  c.svb_ratio =
      static_cast<double>(c.raw_bytes) / static_cast<double>(c.svb_bytes);
  c.pass = c.packed_ratio >= 2.5;
  return c;
}

struct PruningResult {
  std::uint64_t queries = 0;
  double oracle_wall_ms = 0;
  double oracle_qps = 0;
  std::uint64_t oracle_fingerprint = 0;
  bool fingerprint_reference = false;  // full query count: pin applies
  double pruned_wall_ms = 0;
  double pruned_qps = 0;
  bool results_identical = false;
  bool enforced = false;  // qps floor gated (Release + full queries)
  PruningStats stats;
  double postings_pruned_fraction = 0;
  bool pass = false;
};

/// perf_driver's daat checksum, bit-for-bit (docs_scored +
/// postings_touched folded per query, then FNV-style doc/score mix).
std::uint64_t fold_checksum(std::uint64_t checksum, const DaatStats& stats,
                            const ResultEntry& r) {
  checksum += stats.docs_scored + stats.postings_touched;
  for (const ScoredDoc& d : r.docs) {
    std::uint32_t bits;
    std::memcpy(&bits, &d.score, sizeof bits);
    checksum = checksum * 1099511628211ull + d.doc.raw() + bits;
  }
  return checksum;
}

PruningResult run_pruning(const DaatWorkload& w,
                          telemetry::QueryTracer& tracer) {
  PruningResult p;
  p.queries = w.batch.size();

  // Oracle pass: exhaustive processor, pinned fingerprint.
  DaatProcessor oracle(kTopK);
  std::vector<ResultEntry> oracle_results;
  oracle_results.reserve(w.batch.size());
  auto t0 = Clock::now();
  std::uint64_t checksum = 0;
  for (const Query& q : w.batch) {
    DaatStats stats;
    oracle_results.push_back(oracle.intersect(*w.index, q, &stats));
    checksum = fold_checksum(checksum, stats, oracle_results.back());
  }
  p.oracle_wall_ms = ms_since(t0);
  p.oracle_qps =
      1000.0 * static_cast<double>(p.queries) / p.oracle_wall_ms;
  p.oracle_fingerprint = checksum;
  p.fingerprint_reference = p.queries == kFullQueries;

  // Pruned pass: block-max processor, per-query bit-identical check.
  // Each query gets a daat_skip span charging the postings the bound
  // checks proved irrelevant (at the scorer's nominal ns/posting).
  MaxScoreDaatProcessor pruned(kTopK);
  bool identical = true;
  std::uint64_t total_postings = 0;
  t0 = Clock::now();
  for (std::size_t i = 0; i < w.batch.size(); ++i) {
    const auto before = pruned.pruning().postings_pruned;
    tracer.begin_query(w.batch[i].id);
    DaatStats stats;
    const ResultEntry r = pruned.intersect(*w.index, w.batch[i], &stats);
    const auto saved =
        static_cast<Micros>(pruned.pruning().postings_pruned - before);
    tracer.add_span(telemetry::TraceStage::kDaatSkip, saved * 0.008);
    tracer.end_query(saved * 0.008);
    total_postings += stats.postings_touched;
    const ResultEntry& o = oracle_results[i];
    if (r.docs.size() != o.docs.size()) {
      identical = false;
      continue;
    }
    for (std::size_t k = 0; k < r.docs.size(); ++k) {
      std::uint32_t rb;
      std::uint32_t ob;
      std::memcpy(&rb, &r.docs[k].score, sizeof rb);
      std::memcpy(&ob, &o.docs[k].score, sizeof ob);
      identical &= r.docs[k].doc == o.docs[k].doc && rb == ob;
    }
  }
  p.pruned_wall_ms = ms_since(t0);
  p.pruned_qps =
      1000.0 * static_cast<double>(p.queries) / p.pruned_wall_ms;
  p.results_identical = identical;
  p.stats = pruned.pruning();
  const double denom = static_cast<double>(total_postings) +
                       static_cast<double>(p.stats.postings_pruned);
  p.postings_pruned_fraction =
      denom > 0 ? static_cast<double>(p.stats.postings_pruned) / denom : 0;
  // The throughput floor only means something at the full query count
  // on an optimized build; short CI smokes report but don't gate.
#ifdef NDEBUG
  p.enforced = p.fingerprint_reference;
#endif
  p.pass = p.results_identical &&
           (!p.fingerprint_reference ||
            p.oracle_fingerprint == kPinnedFingerprint) &&
           (!p.enforced || p.pruned_qps > kBaselineQps);
  return p;
}

struct LruBenchResult {
  std::uint64_t ops = 0;
  double chained_wall_ms = 0;  // LruMap (list + unordered_map)
  double flat_wall_ms = 0;     // FlatLruMap (open addressing)
  double speedup = 0;
  bool order_match = false;
};

/// The MemListCache op mix: insert-heavy churn with touches and LRU
/// pops, over a working set that overflows a bounded map. Both
/// containers run the identical op stream; the eviction-order
/// fingerprint (folded over every pop_lru) must match exactly.
template <typename Map>
std::pair<double, std::uint64_t> lru_run(std::uint64_t ops) {
  Map map;
  Rng rng(2012);
  std::uint64_t fp = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto key = static_cast<TermId>(rng.next_below(60'000));
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert / refresh
        map.insert(key, i);
        break;
      }
      case 4:
      case 5: {  // recency bump
        if (auto* v = map.touch(key)) fp += *v;
        break;
      }
      case 6: {  // targeted drop
        if (auto v = map.erase(key)) fp += *v;
        break;
      }
      case 7: {  // capacity-style eviction
        if (map.size() > 40'000) {
          if (auto e = map.pop_lru()) {
            fp = fp * 1099511628211ull + e->first.raw() + e->second;
          }
        }
        break;
      }
    }
  }
  return {ms_since(t0), fp};
}

LruBenchResult run_lru_bench(std::uint64_t ops) {
  LruBenchResult r;
  r.ops = ops;
  // Min-of-3 each, interleaved, with the fingerprints compared across
  // container types.
  std::uint64_t fp_chained = 0;
  std::uint64_t fp_flat = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto [cm, cf] = lru_run<LruMap<TermId, std::uint64_t>>(ops);
    const auto [fm, ff] = lru_run<FlatLruMap<TermId, std::uint64_t>>(ops);
    if (rep == 0 || cm < r.chained_wall_ms) r.chained_wall_ms = cm;
    if (rep == 0 || fm < r.flat_wall_ms) r.flat_wall_ms = fm;
    fp_chained = cf;
    fp_flat = ff;
  }
  r.speedup = r.chained_wall_ms / r.flat_wall_ms;
  r.order_match = fp_chained == fp_flat;
  return r;
}

void write_json(const char* path, const CompressionResult& c,
                const PruningResult& p, const LruBenchResult& l) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "pr7_codec_pruning: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"pr7_codec_pruning\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(
      f,
      "  \"compression\": {\"raw_bytes\": %llu, \"packed_bytes\": %llu, "
      "\"svb_bytes\": %llu, \"packed_ratio\": %.3f, \"svb_ratio\": %.3f, "
      "\"blocks\": %llu, \"pass\": %s},\n",
      static_cast<unsigned long long>(c.raw_bytes),
      static_cast<unsigned long long>(c.packed_bytes),
      static_cast<unsigned long long>(c.svb_bytes), c.packed_ratio,
      c.svb_ratio, static_cast<unsigned long long>(c.blocks),
      c.pass ? "true" : "false");
  std::fprintf(
      f,
      "  \"pruning\": {\"queries\": %llu, \"oracle_qps\": %.1f, "
      "\"oracle_wall_ms\": %.3f, \"oracle_fingerprint\": %llu, "
      "\"fingerprint_reference\": %s, \"pruned_qps\": %.1f, "
      "\"pruned_wall_ms\": %.3f, \"baseline_qps\": %.1f, "
      "\"results_identical\": %s, \"enforced\": %s, "
      "\"blocks_decoded\": %llu, \"blocks_skipped\": %llu, "
      "\"prune_jumps\": %llu, \"postings_pruned\": %llu, "
      "\"postings_pruned_fraction\": %.4f, \"pass\": %s},\n",
      static_cast<unsigned long long>(p.queries), p.oracle_qps,
      p.oracle_wall_ms,
      static_cast<unsigned long long>(p.oracle_fingerprint),
      p.fingerprint_reference ? "true" : "false", p.pruned_qps,
      p.pruned_wall_ms, kBaselineQps,
      p.results_identical ? "true" : "false",
      p.enforced ? "true" : "false",
      static_cast<unsigned long long>(p.stats.blocks_decoded),
      static_cast<unsigned long long>(p.stats.blocks_skipped),
      static_cast<unsigned long long>(p.stats.prune_jumps),
      static_cast<unsigned long long>(p.stats.postings_pruned),
      p.postings_pruned_fraction, p.pass ? "true" : "false");
  std::fprintf(
      f,
      "  \"lru_map\": {\"ops\": %llu, \"chained_wall_ms\": %.3f, "
      "\"flat_wall_ms\": %.3f, \"speedup\": %.3f, \"order_match\": %s},\n",
      static_cast<unsigned long long>(l.ops), l.chained_wall_ms,
      l.flat_wall_ms, l.speedup, l.order_match ? "true" : "false");
  std::fprintf(f, "  \"pass\": %s\n}\n",
               c.pass && p.pass && l.order_match ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main() {
  print_environment(
      "PR 7 gate — compressed posting blocks + block-max pruning");
  const auto queries = env_count("SSDSE_DAAT_QUERIES", kFullQueries);
  const char* out = std::getenv("SSDSE_BENCH_OUT");
  if (!out) out = "BENCH_PR7.json";

  DaatWorkload w(queries);
  const CompressionResult c = run_compression(*w.index);
  std::printf(
      "  compression: raw %.1f MiB -> packed %.1f MiB (%.2fx), "
      "svb %.1f MiB (%.2fx) %s\n",
      static_cast<double>(c.raw_bytes) / MiB,
      static_cast<double>(c.packed_bytes) / MiB, c.packed_ratio,
      static_cast<double>(c.svb_bytes) / MiB, c.svb_ratio,
      c.pass ? "[pass]" : "[FAIL: ratio < 2.5]");

  // The pruning counters publish through the registry under the same
  // naming conventions the lint enforces.
  telemetry::QueryTracer tracer;
  const PruningResult p = run_pruning(w, tracer);
  telemetry::MetricsRegistry registry;
  registry.counter("daat.pruning.blocks_decoded", &p.stats.blocks_decoded);
  registry.counter("daat.pruning.blocks_skipped", &p.stats.blocks_skipped);
  registry.counter("daat.pruning.prune_jumps", &p.stats.prune_jumps);
  registry.counter("daat.pruning.postings_pruned",
                   &p.stats.postings_pruned);
  std::printf(
      "  oracle : %8.1f q/s  (fingerprint %llu%s)\n",
      p.oracle_qps, static_cast<unsigned long long>(p.oracle_fingerprint),
      p.fingerprint_reference
          ? (p.oracle_fingerprint == kPinnedFingerprint
                 ? ", matches PR 2 pin"
                 : ", DIVERGES from PR 2 pin")
          : ", reduced query count: pin not applicable");
  std::printf(
      "  pruned : %8.1f q/s  vs %.0f baseline floor%s — results %s\n",
      p.pruned_qps, kBaselineQps,
      p.enforced ? "" : " [floor not enforced on this run]",
      p.results_identical ? "bit-identical" : "DIVERGED");
  std::printf(
      "  pruning: %llu jumps, %llu blocks skipped, %llu blocks decoded, "
      "%.1f%% of postings pruned (daat_skip span total %.0f us, "
      "%zu registry metrics)\n",
      static_cast<unsigned long long>(p.stats.prune_jumps),
      static_cast<unsigned long long>(p.stats.blocks_skipped),
      static_cast<unsigned long long>(p.stats.blocks_decoded),
      100.0 * p.postings_pruned_fraction,
      tracer.stage_stats(telemetry::TraceStage::kDaatSkip).sum(),
      registry.size());

  const LruBenchResult l = run_lru_bench(queries * 50);
  std::printf(
      "  lru_map: chained %.1f ms -> flat %.1f ms (%.2fx), eviction "
      "order %s\n",
      l.chained_wall_ms, l.flat_wall_ms, l.speedup,
      l.order_match ? "identical" : "DIVERGED");

  write_json(out, c, p, l);
  std::printf("wrote %s\n", out);

  if (!(c.pass && p.pass && l.order_match)) {
    std::fprintf(stderr, "pr7_codec_pruning: gate FAILED\n");
    return 1;
  }
  return 0;
}
