// Fig. 16 — one-level vs two-level cache.
//  (a) 1LC(R) with index on HDD vs on SSD;
//  (b) 1LC(R)-HDD vs 2LC(R)-HDD vs 2LC(RI)-HDD
// (SSD result cache = 10x memory RC, SSD list cache = 100x memory IC).
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct Cell {
  Micros response;
  double qps;
};

Cell run(std::uint64_t docs, bool l2, bool list_cache, bool index_on_ssd,
         std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCblru, docs);
  cfg.cache.l2 = l2;
  cfg.cache.list_cache = list_cache;
  cfg.index_on_ssd = index_on_ssd;
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  return {system.metrics().mean_response(), system.throughput_qps()};
}

}  // namespace

int main() {
  print_environment("Fig. 16 — 1L cache vs 2L cache");
  const auto queries = default_queries(20'000);

  std::printf("--- (a) 1LC(R): index on HDD vs SSD ---\n");
  Table a({"docs (10^6)", "1LC(R)-HDD (ms)", "1LC(R)-SSD (ms)"});
  for (std::uint64_t docs = 1; docs <= 5; ++docs) {
    const Cell hdd = run(docs * 1'000'000, false, false, false, queries);
    const Cell ssd = run(docs * 1'000'000, false, false, true, queries);
    a.add_row({Table::integer(static_cast<long long>(docs)),
               fmt_ms(hdd.response), fmt_ms(ssd.response)});
    std::printf("  ... (a) %llu M docs done\n",
                static_cast<unsigned long long>(docs));
  }
  a.print();

  std::printf("\n--- (b) adding the SSD level and the list cache ---\n");
  Table b({"docs (10^6)", "1LC(R)-HDD (ms)", "2LC(R)-HDD (ms)",
           "2LC(RI)-HDD (ms)", "2LC(RI) thpt (q/s)"});
  for (std::uint64_t docs = 1; docs <= 5; ++docs) {
    const Cell l1r = run(docs * 1'000'000, false, false, false, queries);
    const Cell l2r = run(docs * 1'000'000, true, false, false, queries);
    const Cell l2ri = run(docs * 1'000'000, true, true, false, queries);
    b.add_row({Table::integer(static_cast<long long>(docs)),
               fmt_ms(l1r.response), fmt_ms(l2r.response),
               fmt_ms(l2ri.response), Table::num(l2ri.qps, 1)});
    std::printf("  ... (b) %llu M docs done\n",
                static_cast<unsigned long long>(docs));
  }
  b.print();
  std::printf(
      "\npaper: storing the index on SSD helps only a little; the\n"
      "two-level cache — especially caching results AND inverted lists —\n"
      "is what moves response time.\n");
  return 0;
}
