// Fig. 19 — simulated performance inside the SSD: (a) cumulative block
// erasure count and (b) mean flash access time, vs query count, for
// LRU / CBLRU / CBSLRU.
// Paper: erasures -59.92 % (CBLRU) / -71.52 % (CBSLRU); access time
// -13.20 % / -43.83 %, vs LRU.
#include <vector>

#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct Series {
  std::vector<std::uint64_t> erases;
  std::vector<Micros> access;
};

Series run(CachePolicy policy, std::uint64_t total,
           std::uint64_t checkpoints) {
  SystemConfig cfg = paper_system(policy);
  SearchSystem system(cfg);
  Series out;
  const std::uint64_t step = total / checkpoints;
  for (std::uint64_t cp = 0; cp < checkpoints; ++cp) {
    system.run(step);
    out.erases.push_back(system.cache_ssd()->block_erases());
    out.access.push_back(system.cache_ssd()->mean_flash_access());
  }
  system.drain();
  return out;
}

}  // namespace

int main() {
  print_environment("Fig. 19 — block erasures and flash access time");
  const auto total = default_queries(100'000);
  const std::uint64_t checkpoints = 10;

  std::printf("running LRU...\n");
  const Series lru = run(CachePolicy::kLru, total, checkpoints);
  std::printf("running CBLRU...\n");
  const Series cb = run(CachePolicy::kCblru, total, checkpoints);
  std::printf("running CBSLRU...\n");
  const Series cbs = run(CachePolicy::kCbslru, total, checkpoints);

  std::printf("\n--- (a) cumulative block erasure count ---\n");
  Table a({"queries (10^4)", "LRU", "CBLRU", "CBSLRU"});
  for (std::uint64_t cp = 0; cp < checkpoints; ++cp) {
    a.add_row({Table::num(static_cast<double>((cp + 1) * total) /
                              (checkpoints * 10'000.0), 1),
               Table::integer(static_cast<long long>(lru.erases[cp])),
               Table::integer(static_cast<long long>(cb.erases[cp])),
               Table::integer(static_cast<long long>(cbs.erases[cp]))});
  }
  a.print();

  std::printf("\n--- (b) mean flash access time (us) ---\n");
  Table b({"queries (10^4)", "LRU", "CBLRU", "CBSLRU"});
  for (std::uint64_t cp = 0; cp < checkpoints; ++cp) {
    b.add_row({Table::num(static_cast<double>((cp + 1) * total) /
                              (checkpoints * 10'000.0), 1),
               Table::num(lru.access[cp].value(), 2), Table::num(cb.access[cp].value(), 2),
               Table::num(cbs.access[cp].value(), 2)});
  }
  b.print();

  const auto final_lru = static_cast<double>(lru.erases.back());
  if (final_lru > 0) {
    std::printf(
        "\nfinal erasures vs LRU: CBLRU %+.2f%% (paper -59.92%%), "
        "CBSLRU %+.2f%% (paper -71.52%%)\n",
        (static_cast<double>(cb.erases.back()) / final_lru - 1) * 100,
        (static_cast<double>(cbs.erases.back()) / final_lru - 1) * 100);
  }
  if (lru.access.back() > Micros{}) {
    std::printf(
        "final access time vs LRU: CBLRU %+.2f%% (paper -13.20%%), "
        "CBSLRU %+.2f%% (paper -43.83%%)\n",
        (cb.access.back() / lru.access.back() - 1) * 100,
        (cbs.access.back() / lru.access.back() - 1) * 100);
  }
  return 0;
}
