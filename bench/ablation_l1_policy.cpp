// Ablation: L1 replacement policy on the term-access stream — plain LRU
// vs ARC (adaptive, workload-oblivious) vs the paper's EV-window scheme
// (domain-aware: list sizes + utilization). Entry-count capacities so
// the three are directly comparable on the same stream.
#include "bench/bench_common.hpp"
#include "src/cache/arc_cache.hpp"
#include "src/cache/mem_list_cache.hpp"
#include "src/workload/log_analysis.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct LruRef {
  explicit LruRef(std::size_t cap) : capacity(cap) {}
  bool access(TermId key) {
    if (map.touch(key) != nullptr) return true;
    map.insert(key, true);
    if (map.size() > capacity) map.pop_lru();
    return false;
  }
  std::size_t capacity;
  LruMap<TermId, bool> map;
};

}  // namespace

int main() {
  print_environment("Ablation — L1 list replacement: LRU vs ARC vs EV");
  const auto queries = default_queries(60'000);

  SystemConfig sys = paper_system(CachePolicy::kCblru);
  AnalyticIndex index(sys.corpus);
  QueryLogGenerator gen(sys.log);

  Table t({"capacity (entries)", "LRU", "ARC", "EV-window (paper)"});
  for (std::size_t cap : {256u, 1024u, 4096u, 16384u}) {
    LruRef lru(cap);
    ArcCache<TermId> arc(cap);
    // The paper's memory scheme, entry-count capacity emulated via a
    // large byte budget and uniform entry sizes.
    MemListCache ev(cap * KiB, CachePolicy::kCblru, /*W=*/8);

    std::uint64_t lru_hits = 0, arc_hits = 0, ev_hits = 0, refs = 0;
    QueryLogGenerator stream(sys.log);
    for (std::uint64_t i = 0; i < queries; ++i) {
      for (TermId term : stream.next().terms) {
        ++refs;
        lru_hits += lru.access(term);
        arc_hits += arc.access(term);
        if (ev.lookup(term, 1) != nullptr) {
          ++ev_hits;
        } else {
          const TermMeta meta = index.term_meta(term);
          CachedList info;
          info.cached_bytes = 1 * KiB;  // uniform entries
          info.full_bytes = meta.list_bytes;
          info.utilization = meta.utilization;
          info.freq = 1;
          info.sc_blocks =
              formula_sc_blocks(meta.list_bytes, meta.utilization, 128 * KiB);
          info.ev = formula_ev(1, info.sc_blocks);
          ev.insert(term, info);
        }
      }
    }
    const double n = static_cast<double>(refs);
    t.add_row({Table::integer(static_cast<long long>(cap)),
               Table::percent(static_cast<double>(lru_hits) / n),
               Table::percent(static_cast<double>(arc_hits) / n),
               Table::percent(static_cast<double>(ev_hits) / n)});
    std::printf("  ... capacity %zu done\n", cap);
  }
  t.print();
  std::printf(
      "\nreading: ARC's adaptation closes most of LRU's gap without any\n"
      "domain knowledge; the EV scheme encodes size/utilization awareness\n"
      "whose payoff shows on the SSD level (Formula 1 block economy), not\n"
      "in raw L1 hit ratio.\n");
  return 0;
}
