// Fig. 18 — cost-performance evaluation (CBSLRU).
//  (a) 1LC-HDD vs 1LC-SSD vs 2LC-HDD response time vs collection size;
//  (b) memory/SSD capacity mixes with the paper's $/GB figures
//      (DRAM $14.5, SSD $1.9).
#include "bench/bench_common.hpp"
#include "src/hybrid/cost_model.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

Micros run_a(std::uint64_t docs, bool l2, bool index_on_ssd,
             std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCbslru, docs);
  cfg.cache.l2 = l2;
  cfg.index_on_ssd = index_on_ssd;
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  return system.metrics().mean_response();
}

struct MixCell {
  Micros response;
  double dollars;
};

MixCell run_b(Bytes mem, Bytes ssd_cache, std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCbslru);
  cfg.cache.mem_result_capacity = mem / 5;
  cfg.cache.mem_list_capacity = mem - mem / 5;
  cfg.cache.l2 = ssd_cache > 0;
  if (ssd_cache > 0) {
    cfg.cache.ssd_result_capacity = ssd_cache / 20;
    cfg.cache.ssd_list_capacity = ssd_cache - ssd_cache / 20;
  }
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  CostModel cost;
  return {system.metrics().mean_response(),
          cost.dollars(mem, ssd_cache, 0)};
}

}  // namespace

int main() {
  print_environment("Fig. 18 — cost performance evaluation");
  const auto queries = default_queries(20'000);

  std::printf("--- (a) 1LC-HDD vs 1LC-SSD vs 2LC-HDD ---\n");
  Table a({"docs (10^6)", "1LC-HDD (ms)", "1LC-SSD (ms)", "2LC-HDD (ms)"});
  for (std::uint64_t docs = 1; docs <= 5; ++docs) {
    a.add_row({Table::integer(static_cast<long long>(docs)),
               fmt_ms(run_a(docs * 1'000'000, false, false, queries)),
               fmt_ms(run_a(docs * 1'000'000, false, true, queries)),
               fmt_ms(run_a(docs * 1'000'000, true, false, queries))});
    std::printf("  ... (a) %llu M docs done\n",
                static_cast<unsigned long long>(docs));
  }
  a.print();

  std::printf("\n--- (b) memory/SSD capacity mixes (5M docs) ---\n");
  struct Mix {
    const char* name;
    Bytes mem;
    Bytes ssd;
  };
  // Scaled to 1/50 of the paper's 0.1-1 GB / 2 GB so a 20k-query stream
  // exercises comparable capacity pressure on the simulated shard.
  const Mix mixes[] = {
      {"1LC: MM(10MiB)", 10 * MiB, 0},
      {"1LC: MM(20MiB)", 20 * MiB, 0},
      {"2LC: MM(2MiB)+SSD(40MiB)", 2 * MiB, 40 * MiB},
      {"2LC: MM(10MiB)+SSD(40MiB)", 10 * MiB, 40 * MiB},
  };
  CostModel cost;
  Table b({"configuration", "resp (ms)", "cost ($)", "$ x ms"});
  for (const Mix& mix : mixes) {
    const MixCell cell = run_b(mix.mem, mix.ssd, queries);
    b.add_row({mix.name, fmt_ms(cell.response),
               Table::num(cell.dollars, 3),
               Table::num(cell.dollars * cell.response / kMillisecond, 2)});
    std::printf("  ... (b) %s done\n", mix.name);
  }
  b.print();
  std::printf(
      "\npaper: a small memory + larger SSD two-level cache matches or\n"
      "beats a much larger memory-only cache at a fraction of the cost\n"
      "(DRAM $14.5/GB vs SSD $1.9/GB).\n");
  return 0;
}
