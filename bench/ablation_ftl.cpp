// Ablation (beyond the paper): the same CBLRU cache workload over the
// four FTL schemes of SS II.A. The paper assumes the ideal page-mapping
// FTL; this quantifies how much that assumption matters.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Ablation — FTL scheme under the cache workload");
  const auto queries = default_queries(20'000);

  Table t({"FTL", "resp (ms)", "block erases", "flash access (us)",
           "write amp", "GC copies"});
  for (const std::string& scheme :
       {std::string("page"), std::string("page+WL"), std::string("block"),
        std::string("hybrid-log"), std::string("bplru+hybrid-log"),
        std::string("dftl")}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, 2'000'000, 6 * MiB);
    if (scheme == "page+WL") {
      cfg.cache_ssd.ftl_scheme = "page";
      cfg.cache_ssd.ftl.wear_leveling = true;
    } else {
      cfg.cache_ssd.ftl_scheme = scheme;
    }
    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    const Ssd* ssd = system.cache_ssd();
    t.add_row({scheme, fmt_ms(system.metrics().mean_response()),
               Table::integer(static_cast<long long>(ssd->block_erases())),
               Table::num(ssd->mean_flash_access().value(), 2),
               Table::num(ssd->ftl().stats().write_amplification(
                   ssd->nand().stats()), 3),
               Table::integer(static_cast<long long>(
                   ssd->ftl().stats().gc_page_copies))});
    std::printf("  ... %s done\n", scheme.c_str());
  }
  t.print();
  std::printf(
      "\nreading: under CBLRU's write shaping the page-mapped FTL is\n"
      "near-ideal (write amplification ~1.0), validating the paper's\n"
      "baseline choice; block mapping still collapses on the partial-\n"
      "block list writes, hybrid-log sits in between, DFTL pays only\n"
      "translation overhead, and wear leveling costs nothing here.\n");
  return 0;
}
