// Extension bench: fault injection and graceful degradation
// (DESIGN.md §10). Sweeps NAND/HDD error rates over the paper's
// two-level cell and checks the two robustness headlines:
//
//  1. *Results never change.* Injected faults may cost latency and hit
//     ratio, but every query's merged top-K must stay bit-identical to
//     the fault-free baseline — a failed SSD-cache read degrades into
//     the miss path, which computes the same answer from the HDD.
//  2. *The breaker trips and recovers.* Under a sustained flash error
//     burst the SSD-cache circuit breaker opens (queries bypass the
//     cache instead of paying doomed flash reads), probes the cache
//     after a cooldown, and re-closes when probes succeed.
//
// Emits machine-readable JSON (SSDSE_BENCH_OUT, default
// BENCH_FAULTS.json) consumed by scripts/check_bench_json.py in CI, and
// a telemetry run report for the last faulty cell when
// SSDSE_TELEMETRY_OUT is set (exercises the report's "faults" section).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/hybrid/cluster.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct FaultCell {
  const char* name;
  double ssd_unc = 0;        // NAND uncorrectable-read rate (cache SSD)
  double ssd_transient = 0;  // NAND ECC-retry rate
  double ssd_program = 0;    // NAND program-failure rate (BBM)
  double hdd_unc = 0;        // HDD uncorrectable-read rate
  double hdd_spike = 0;      // HDD latency-spike rate
};

struct CellResult {
  const FaultCell* cell = nullptr;
  std::uint64_t fingerprint = 0;
  Micros mean_response = micros(0);
  std::uint64_t ssd_read_errors = 0;
  std::uint64_t hdd_read_errors = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t grown_bad_blocks = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_reopens = 0;
  std::uint64_t breaker_bypassed = 0;
  std::string breaker_state = "closed";
};

SystemConfig cell_config(const FaultCell& c) {
  SystemConfig cfg = paper_system(CachePolicy::kCbslru, 2'000'000, 6 * MiB);
  cfg.cache_ssd.nand.fault.read_unc_rate = c.ssd_unc;
  cfg.cache_ssd.nand.fault.read_transient_rate = c.ssd_transient;
  cfg.cache_ssd.nand.fault.program_fail_rate = c.ssd_program;
  cfg.hdd_faults.read_unc_rate = c.hdd_unc;
  cfg.hdd_faults.latency_spike_rate = c.hdd_spike;
  // A breaker sized so the severe cell's error burst demonstrably trips
  // it *and* lets probe successes re-close it within the run.
  cfg.cache.breaker.window = 64;
  cfg.cache.breaker.min_samples = 16;
  cfg.cache.breaker.threshold = 0.5;
  cfg.cache.breaker.cooldown_ops = 128;
  cfg.cache.breaker.probes = 2;
  return cfg;
}

CellResult run_cell(const FaultCell& c, std::uint64_t queries,
                    bool emit_report) {
  SearchSystem sys(cell_config(c));
  std::uint64_t checksum = 0;
  Micros sum = micros(0);
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto out = sys.execute(sys.generator().next());
    sum += out.response;
    for (const ScoredDoc& d : out.result.docs) {
      std::uint32_t bits;
      std::memcpy(&bits, &d.score, sizeof bits);
      checksum = checksum * 1099511628211ull + d.doc.raw() + bits;
    }
  }
  sys.drain();
  if (emit_report) maybe_write_report(sys, "ext_faults");

  CellResult r;
  r.cell = &c;
  r.fingerprint = checksum;
  r.mean_response = queries ? sum / static_cast<double>(queries) : Micros{};
  const CacheManagerStats& cm = sys.cache_manager().stats();
  r.ssd_read_errors = cm.ssd_read_errors;
  r.hdd_read_errors = cm.hdd_read_errors;
  const auto& br = sys.cache_manager().breaker();
  r.breaker_trips = br.stats().trips;
  r.breaker_closes = br.stats().closes;
  r.breaker_reopens = br.stats().reopens;
  r.breaker_bypassed = br.stats().bypassed_ops;
  r.breaker_state = CircuitBreaker::to_string(br.state());
  if (const Ssd* ssd = sys.cache_ssd()) {
    r.read_retries = ssd->ftl().stats().read_retries;
    r.grown_bad_blocks = ssd->ftl().stats().grown_bad_blocks;
  }
  return r;
}

// ---- Cluster cell: broker fault accounting over a sharded fleet ------
//
// One shard's HDD index store misbehaves; the clean shard does not. The
// broker's observed_faults (per-attempt counter deltas summed at the
// ReplicaGroup) must balance the shard-side fault counters exactly, and
// with no deadline the faults cost latency only: coverage stays 1.0 and
// nothing is dropped (graceful degradation, DESIGN.md §10/§15).
struct ClusterCellResult {
  std::uint64_t queries = 0;
  std::uint64_t broker_observed_faults = 0;
  std::uint64_t shard_side_faults = 0;
  std::uint64_t faulty_shard_errors = 0;
  std::uint64_t clean_shard_errors = 0;
  std::uint64_t shards_dropped = 0;
  double coverage_mean = 0;
  bool books_balance = false;
  bool full_coverage = false;
};

ClusterCellResult run_cluster_cell(std::uint64_t queries) {
  ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.total_docs = 400'000;
  cfg.shard_template.set_memory_budget(4 * MiB);
  cfg.shard_template.training_queries = 500;
  ReplicaFaultOverride faulty;
  faulty.shard = 1;
  faulty.replica = 0;
  faulty.hdd.read_unc_rate = 0.05;
  faulty.hdd.latency_spike_rate = 0.01;
  cfg.replica_faults.push_back(faulty);

  SearchCluster cluster(cfg);
  cluster.run(queries);

  ClusterCellResult r;
  r.queries = queries;
  const auto snap = cluster.replication_snapshot();
  r.broker_observed_faults = snap.observed_faults;
  r.coverage_mean = snap.coverage_mean;
  r.shards_dropped = snap.shards_dropped;
  for (std::uint32_t s = 0; s < cluster.num_shards(); ++s) {
    const SearchSystem& sys = cluster.shard(s);
    const CacheManagerStats& cm = sys.cache_manager().stats();
    std::uint64_t errs = cm.ssd_read_errors + cm.hdd_read_errors;
    if (const FaultyDevice* hdd = sys.faulty_hdd()) {
      errs += hdd->fault_stats().write_fails;
    }
    r.shard_side_faults += errs;
    (s == 1 ? r.faulty_shard_errors : r.clean_shard_errors) = errs;
  }
  r.books_balance = r.broker_observed_faults == r.shard_side_faults &&
                    r.faulty_shard_errors > 0 && r.clean_shard_errors == 0;
  r.full_coverage = r.coverage_mean == 1.0 && r.shards_dropped == 0;
  return r;
}

void write_json(const char* path, const std::vector<CellResult>& cells,
                std::uint64_t queries, bool fingerprint_match,
                const CellResult& severe, const ClusterCellResult& cluster) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "ext_faults: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_faults\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"queries\": %llu,\n",
               static_cast<unsigned long long>(queries));
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"fingerprint\": %llu, "
        "\"mean_response_ms\": %.3f, \"ssd_read_errors\": %llu, "
        "\"hdd_read_errors\": %llu, \"read_retries\": %llu, "
        "\"grown_bad_blocks\": %llu, \"breaker\": {\"trips\": %llu, "
        "\"closes\": %llu, \"reopens\": %llu, \"bypassed_ops\": %llu, "
        "\"final_state\": \"%s\"}}%s\n",
        r.cell->name, static_cast<unsigned long long>(r.fingerprint),
        r.mean_response / kMillisecond,
        static_cast<unsigned long long>(r.ssd_read_errors),
        static_cast<unsigned long long>(r.hdd_read_errors),
        static_cast<unsigned long long>(r.read_retries),
        static_cast<unsigned long long>(r.grown_bad_blocks),
        static_cast<unsigned long long>(r.breaker_trips),
        static_cast<unsigned long long>(r.breaker_closes),
        static_cast<unsigned long long>(r.breaker_reopens),
        static_cast<unsigned long long>(r.breaker_bypassed),
        r.breaker_state.c_str(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fingerprint_match\": %s,\n",
               fingerprint_match ? "true" : "false");
  std::fprintf(
      f,
      "  \"breaker_demo\": {\"trips\": %llu, \"closes\": %llu, "
      "\"recovered\": %s},\n",
      static_cast<unsigned long long>(severe.breaker_trips),
      static_cast<unsigned long long>(severe.breaker_closes),
      severe.breaker_trips > 0 && severe.breaker_closes > 0 ? "true"
                                                            : "false");
  std::fprintf(
      f,
      "  \"cluster\": {\"queries\": %llu, \"broker_observed_faults\": %llu, "
      "\"shard_side_faults\": %llu, \"faulty_shard_errors\": %llu, "
      "\"clean_shard_errors\": %llu, \"shards_dropped\": %llu, "
      "\"coverage_mean\": %.6f, \"books_balance\": %s, "
      "\"full_coverage\": %s}\n}\n",
      static_cast<unsigned long long>(cluster.queries),
      static_cast<unsigned long long>(cluster.broker_observed_faults),
      static_cast<unsigned long long>(cluster.shard_side_faults),
      static_cast<unsigned long long>(cluster.faulty_shard_errors),
      static_cast<unsigned long long>(cluster.clean_shard_errors),
      static_cast<unsigned long long>(cluster.shards_dropped),
      cluster.coverage_mean, cluster.books_balance ? "true" : "false",
      cluster.full_coverage ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main() {
  print_environment("Extension — fault injection & graceful degradation");
  const auto queries = default_queries(20'000);
  std::printf("%llu queries per cell, CBSLRU two-level hierarchy\n\n",
              static_cast<unsigned long long>(queries));

  const std::vector<FaultCell> kCells = {
      {"baseline", 0, 0, 0, 0, 0},
      {"light", 0.001, 0.01, 0, 0.001, 0.0005},
      {"moderate", 0.02, 0.05, 0.0005, 0.01, 0.002},
      // Breaker demo. The rate is per NAND *page* and an entry read
      // merges its pages' statuses to the most severe, so the
      // entry-level error rate is much higher than 8 % — hot enough to
      // trip the breaker repeatedly, cool enough that two consecutive
      // probe reads still succeed and re-close it (recovery).
      {"severe", 0.08, 0.1, 0.001, 0, 0},
  };

  std::vector<CellResult> results;
  for (const FaultCell& c : kCells) {
    std::printf("running %-9s (ssd unc %.3f, hdd unc %.3f)...\n", c.name,
                c.ssd_unc, c.hdd_unc);
    results.push_back(
        run_cell(c, queries, /*emit_report=*/&c == &kCells.back()));
  }
  std::printf("\n");

  Table t({"cell", "mean (ms)", "ssd errs", "hdd errs", "retries",
           "bad blks", "trips", "closes", "bypassed", "fingerprint"});
  for (const CellResult& r : results) {
    t.add_row({r.cell->name, fmt_ms(r.mean_response),
               Table::num(static_cast<double>(r.ssd_read_errors), 0),
               Table::num(static_cast<double>(r.hdd_read_errors), 0),
               Table::num(static_cast<double>(r.read_retries), 0),
               Table::num(static_cast<double>(r.grown_bad_blocks), 0),
               Table::num(static_cast<double>(r.breaker_trips), 0),
               Table::num(static_cast<double>(r.breaker_closes), 0),
               Table::num(static_cast<double>(r.breaker_bypassed), 0),
               std::to_string(r.fingerprint)});
  }
  t.print();

  const std::uint64_t baseline = results.front().fingerprint;
  bool match = true;
  for (const CellResult& r : results) match = match && r.fingerprint == baseline;
  const CellResult& severe = results.back();
  const bool breaker_ok = severe.breaker_trips > 0 && severe.breaker_closes > 0;

  // Cluster cell: one faulty HDD in a two-shard fleet; the broker's
  // fault books must balance the shard counters and coverage must hold.
  std::printf("\nrunning cluster cell (faulty HDD on shard 1)...\n");
  const ClusterCellResult cluster =
      run_cluster_cell(std::max<std::uint64_t>(queries / 10, 1'000));
  std::printf(
      "  broker observed %llu faults, shards report %llu "
      "(faulty shard %llu, clean shard %llu): books %s\n"
      "  coverage %.4f with %llu drops: %s\n",
      static_cast<unsigned long long>(cluster.broker_observed_faults),
      static_cast<unsigned long long>(cluster.shard_side_faults),
      static_cast<unsigned long long>(cluster.faulty_shard_errors),
      static_cast<unsigned long long>(cluster.clean_shard_errors),
      cluster.books_balance ? "balance" : "DO NOT BALANCE",
      cluster.coverage_mean,
      static_cast<unsigned long long>(cluster.shards_dropped),
      cluster.full_coverage ? "graceful degradation held"
                            : "COVERAGE LOST");
  const bool cluster_ok = cluster.books_balance && cluster.full_coverage;

  std::printf(
      "\nresult integrity: every cell's fingerprint %s the fault-free\n"
      "baseline — injected faults cost latency, never answers.\n"
      "breaker: %llu trips, %llu re-closes, %llu reopens in the severe\n"
      "cell (%s).\n",
      match ? "matches" : "DIVERGES FROM",
      static_cast<unsigned long long>(severe.breaker_trips),
      static_cast<unsigned long long>(severe.breaker_closes),
      static_cast<unsigned long long>(severe.breaker_reopens),
      breaker_ok ? "tripped and recovered" : "DID NOT trip and recover");

  const char* out = std::getenv("SSDSE_BENCH_OUT");
  if (!out) out = "BENCH_FAULTS.json";
  write_json(out, results, queries, match, severe, cluster);
  std::printf("wrote %s\n", out);

  return match && breaker_ok && cluster_ok ? 0 : 1;
}
