// Extension bench: open-loop traffic, SLO verdicts, and tail
// attribution (DESIGN.md §14). Sweeps offered load from 0.5x to 2x of
// the cluster's calibrated capacity through the arrival harness
// (src/workload/arrival.hpp) and gates:
//
//  1. *SLO met at 1x.* At the utilization-target load the p99 SLO
//     never breaches (no breach windows over the run).
//  2. *Breach detected and attributed at 2x.* Past saturation the SLO
//     breaches and the worst-N attribution names queue_wait — tail
//     latency at overload is queueing, not service.
//  3. *Conservation.* shed + served == offered in every cell.
//  4. *Determinism.* Re-running the 1x cell on a fresh cluster
//     reproduces the windowed-series fingerprint bit for bit.
//  5. *Zero-traffic pins.* With the harness unused, the perf_driver
//     phases reproduce their pinned fingerprints (enforced only at the
//     full query counts, like pr7_codec_pruning).
//
// "1x" means the utilization target (0.75 of saturation), not rho = 1:
// an open-loop queue at exactly rho = 1 is a random walk and no SLO
// verdict about it is stable. Capacity is calibrated per run from a
// closed-loop pass, so the gates track the simulator's own speed.
//
// Emits machine-readable JSON (SSDSE_BENCH_OUT, default
// BENCH_PR8.json) validated by scripts/check_bench_json.py, and the
// 1x cell's run report with the traffic/windows/slo/attribution
// sections when SSDSE_TELEMETRY_OUT is set.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/engine/daat.hpp"
#include "src/hybrid/traffic.hpp"
#include "src/telemetry/json_writer.hpp"
#include "src/util/rng.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

// Pinned zero-traffic fingerprints (PR 2/3, re-gated every PR since).
constexpr std::uint64_t kDaatPin = 9983495460346675520ull;
constexpr std::uint64_t kCachePinPpm = 322028;
constexpr std::uint64_t kSsdPinPpm = 508879;
constexpr std::uint64_t kFullSystemQueries = 40'000;
constexpr std::uint64_t kFullDaatQueries = 20'000;

constexpr double kUtilizationTarget = 0.75;
constexpr std::uint32_t kServers = 4;
constexpr std::size_t kQueueCapacity = 256;
constexpr Micros kWindow = kSecond;

std::uint64_t env_count(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

ClusterConfig traffic_cluster() {
  ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.total_docs = 2'000'000;
  cfg.shard_template = paper_system(CachePolicy::kCbslru, 1'000'000, 6 * MiB);
  return cfg;
}

struct Calibration {
  std::uint64_t queries = 0;
  Micros mean_service = micros(0);
  Micros p99_service = micros(0);
  double capacity_qps = 0;  // kUtilizationTarget * saturation
};

/// Closed-loop calibration: measure the cluster's service-time
/// distribution on its own query mix, then place "1x" at the
/// utilization target of the k-server saturation rate.
Calibration calibrate(std::uint64_t queries) {
  SearchCluster cluster(traffic_cluster());
  ClusterTrafficTarget target(cluster);
  LatencyHistogram service;
  StreamingStats stats;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const Micros s = target.serve(cluster.generator().next());
    service.add(s);
    stats.add(s);
  }
  Calibration cal;
  cal.queries = queries;
  cal.mean_service = micros(stats.mean());
  cal.p99_service = micros(service.quantile(0.99));
  cal.capacity_qps = kUtilizationTarget * kServers * kSecond.value() /
                     std::max(cal.mean_service.value(), 1.0);
  return cal;
}

std::vector<telemetry::SloSpec> make_slos(const Calibration& cal) {
  telemetry::SloSpec p99;
  p99.name = "p99_latency";
  p99.quantile = 0.99;
  p99.threshold_us = 12.0 * cal.p99_service.value();
  p99.compliance_windows = 10;
  telemetry::SloSpec p999;
  p999.name = "p999_latency";
  p999.quantile = 0.999;
  p999.threshold_us = 40.0 * cal.p99_service.value();
  p999.compliance_windows = 10;
  return {p99, p999};
}

struct TrafficCell {
  const char* name;
  double multiplier;         // of calibrated capacity
  double diurnal_amplitude;  // gate cells keep this small
  bool flash_crowd;          // burst showcase only
  const char* expect;        // "met" | "breach" | "none"
};

struct CellOutcome {
  const TrafficCell* cell = nullptr;
  TrafficResult result{kWindow};
  std::uint64_t fingerprint = 0;
  bool conservation = false;
  bool pass = true;
};

CellOutcome run_cell(const TrafficCell& cell, const Calibration& cal,
                     std::uint64_t offered, bool emit_report) {
  SearchCluster cluster(traffic_cluster());
  ClusterTrafficTarget target(cluster);

  TrafficConfig cfg;
  cfg.arrival.base_qps = cell.multiplier * cal.capacity_qps;
  cfg.arrival.diurnal_amplitude = cell.diurnal_amplitude;
  cfg.arrival.diurnal_period = 20 * kSecond;
  cfg.arrival.outlier_probability = 0.001;
  cfg.arrival.outlier_terms = 8;
  cfg.arrival.seed = 4242;
  if (cell.flash_crowd) {
    cfg.arrival.flash_crowds.push_back(
        FlashCrowd{8 * kSecond, 4 * kSecond, 2.5});
  }
  cfg.offered = offered;
  cfg.servers = kServers;
  cfg.queue_capacity = kQueueCapacity;
  cfg.window = kWindow;
  cfg.slos = make_slos(cal);
  cfg.worst_n = 32;

  CellOutcome out;
  out.cell = &cell;
  out.result = run_traffic(target, cluster.generator(), cfg);
  out.fingerprint = out.result.series_fingerprint();
  out.conservation =
      out.result.served + out.result.shed == out.result.offered;

  const SloReport& p99 = out.result.slo.front();
  if (std::strcmp(cell.expect, "met") == 0) {
    out.pass = p99.breach_windows == 0 &&
               p99.state != telemetry::SloState::kBreach;
  } else if (std::strcmp(cell.expect, "breach") == 0) {
    out.pass = p99.breach_windows > 0 &&
               out.result.guilty_stage == "queue_wait";
  }
  out.pass = out.pass && out.conservation;

  if (emit_report) {
    maybe_write_report(cluster.shard(0), "ext_traffic", &out.result);
  }
  return out;
}

// ---- Zero-traffic pins: the perf_driver phases, reproduced ----------

std::uint64_t daat_fingerprint(std::uint64_t queries) {
  CorpusConfig cc;
  cc.num_docs = 40'000;
  cc.vocab_size = 2'000;
  cc.terms_per_doc = 60;
  cc.max_df_fraction = 0.10;
  cc.seed = 2012;
  Rng rng(99);
  MaterializedCorpus corpus(cc, rng);
  MaterializedIndex index(corpus);

  QueryLogConfig qc;
  qc.distinct_queries = 50'000;
  qc.vocab_size = cc.vocab_size;
  qc.min_terms = 2;
  qc.max_terms = 3;
  qc.seed = 17;
  QueryLogGenerator gen(qc);

  DaatProcessor daat(/*top_k=*/kTopK);
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const Query q = gen.next();
    DaatStats stats;
    const ResultEntry r = daat.intersect(index, q, &stats);
    checksum += stats.docs_scored + stats.postings_touched;
    for (const ScoredDoc& d : r.docs) {
      std::uint32_t bits;
      std::memcpy(&bits, &d.score, sizeof bits);
      checksum = checksum * 1099511628211ull + d.doc.raw() + bits;
    }
  }
  return checksum;
}

std::uint64_t coverage_ppm(SystemConfig cfg, std::uint64_t queries) {
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  return static_cast<std::uint64_t>(
      1e6 * system.metrics().request_coverage());
}

std::uint64_t cache_fingerprint(std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCblru);
  cfg.cache.l2 = false;
  cfg.set_memory_budget(64 * MiB);
  cfg.cache.l2 = false;  // set_memory_budget sizes SSD fields; keep off
  cfg.training_queries = 0;
  return coverage_ppm(cfg, queries);
}

std::uint64_t ssd_fingerprint(std::uint64_t queries) {
  return coverage_ppm(paper_system(CachePolicy::kCbslru), queries);
}

struct PinResult {
  const char* name;
  std::uint64_t fingerprint = 0;
  std::uint64_t expected = 0;
  bool match = false;
};

}  // namespace

int main() {
  print_environment("Extension — open-loop traffic, SLOs, tail attribution");
  const std::uint64_t offered = default_queries(20'000);
  const std::uint64_t system_queries = default_queries(40'000);
  const std::uint64_t daat_queries =
      env_count("SSDSE_DAAT_QUERIES", kFullDaatQueries);
  const std::uint64_t calibration_queries =
      std::min<std::uint64_t>(4'000, std::max<std::uint64_t>(offered / 4, 500));

  std::printf("calibrating capacity (%llu closed-loop queries)...\n",
              static_cast<unsigned long long>(calibration_queries));
  const Calibration cal = calibrate(calibration_queries);
  std::printf(
      "  mean service %.2f ms, p99 %.2f ms => capacity %.0f q/s "
      "(%u servers at %.0f%% utilization)\n\n",
      cal.mean_service / kMillisecond, cal.p99_service / kMillisecond,
      cal.capacity_qps, kServers, 100.0 * kUtilizationTarget);

  const std::vector<TrafficCell> kCells = {
      {"0.5x", 0.5, 0.05, false, "met"},
      {"1x", 1.0, 0.05, false, "met"},
      {"2x", 2.0, 0.05, false, "breach"},
      {"burst", 1.0, 0.30, true, "none"},
  };

  std::vector<CellOutcome> cells;
  for (const TrafficCell& c : kCells) {
    std::printf("running %-6s (%.0f q/s offered, %llu arrivals)...\n",
                c.name, c.multiplier * cal.capacity_qps,
                static_cast<unsigned long long>(offered));
    cells.push_back(run_cell(c, cal, offered,
                             /*emit_report=*/std::strcmp(c.name, "1x") == 0));
  }

  // Determinism: the 1x cell again, fresh cluster, same seeds.
  std::printf("re-running 1x for determinism...\n\n");
  const CellOutcome repeat =
      run_cell(kCells[1], cal, offered, /*emit_report=*/false);
  const bool determinism = repeat.fingerprint == cells[1].fingerprint;

  Table t({"cell", "offered", "served", "shed", "p99 (ms)", "wait p99 (ms)",
           "p99 SLO", "breach wins", "guilty stage"});
  for (const CellOutcome& c : cells) {
    const TrafficResult& r = c.result;
    const SloReport& s = r.slo.front();
    t.add_row({c.cell->name,
               Table::num(static_cast<double>(r.offered), 0),
               Table::num(static_cast<double>(r.served), 0),
               Table::num(static_cast<double>(r.shed), 0),
               fmt_ms(micros(r.response_hist.quantile(0.99))),
               fmt_ms(micros(r.wait_hist.quantile(0.99))),
               telemetry::to_string(s.state),
               Table::num(static_cast<double>(s.breach_windows), 0),
               r.guilty_stage});
  }
  t.print();

  // Zero-traffic guard: harness unused, prior fingerprints must hold.
  const bool pins_enforced = system_queries == kFullSystemQueries &&
                             daat_queries == kFullDaatQueries;
  std::printf("\nzero-traffic fingerprints (%s)...\n",
              pins_enforced ? "enforced" : "reported only: reduced counts");
  std::vector<PinResult> pins;
  pins.push_back({"daat", daat_fingerprint(daat_queries), kDaatPin, false});
  pins.push_back(
      {"cache", cache_fingerprint(system_queries), kCachePinPpm, false});
  pins.push_back({"ssd", ssd_fingerprint(system_queries), kSsdPinPpm, false});
  bool pins_match = true;
  for (PinResult& p : pins) {
    p.match = p.fingerprint == p.expected;
    pins_match = pins_match && p.match;
    std::printf("  %-5s %llu (pin %llu) %s\n", p.name,
                static_cast<unsigned long long>(p.fingerprint),
                static_cast<unsigned long long>(p.expected),
                p.match ? "ok" : "MISMATCH");
  }

  const bool slo_met_at_1x = cells[1].pass;
  const bool breach_at_2x = cells[2].result.slo.front().breach_windows > 0;
  const bool attributed =
      cells[2].result.guilty_stage == "queue_wait";
  bool conservation = true;
  for (const CellOutcome& c : cells) conservation = conservation && c.conservation;
  conservation = conservation && repeat.conservation;
  const bool zero_traffic_ok = !pins_enforced || pins_match;
  const bool pass = slo_met_at_1x && breach_at_2x && attributed &&
                    conservation && determinism && zero_traffic_ok &&
                    cells[0].pass;

  std::printf(
      "\ngates: met@1x %s, breach@2x %s, attributed %s (%s), "
      "conservation %s, determinism %s, zero-traffic %s\n",
      slo_met_at_1x ? "ok" : "FAIL", breach_at_2x ? "ok" : "FAIL",
      attributed ? "ok" : "FAIL", cells[2].result.guilty_stage.c_str(),
      conservation ? "ok" : "FAIL", determinism ? "ok" : "FAIL",
      zero_traffic_ok ? "ok" : "FAIL");

  // ---- BENCH_PR8.json -------------------------------------------------
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("ext_traffic");
  w.key("schema_version");
  w.value(std::uint64_t{1});
  w.key("offered_per_cell");
  w.value(offered);
  w.key("servers");
  w.value(static_cast<std::uint64_t>(kServers));
  w.key("queue_capacity");
  w.value(static_cast<std::uint64_t>(kQueueCapacity));
  w.key("window_us");
  w.value(kWindow.value());
  w.key("calibration");
  w.begin_object();
  w.key("queries");
  w.value(cal.queries);
  w.key("mean_service_us");
  w.value(cal.mean_service.value());
  w.key("p99_service_us");
  w.value(cal.p99_service.value());
  w.key("utilization_target");
  w.value(kUtilizationTarget);
  w.key("capacity_qps");
  w.value(cal.capacity_qps);
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const CellOutcome& c : cells) {
    const TrafficResult& r = c.result;
    w.begin_object();
    w.key("name");
    w.value(c.cell->name);
    w.key("multiplier");
    w.value(c.cell->multiplier);
    w.key("expect");
    w.value(c.cell->expect);
    w.key("offered");
    w.value(r.offered);
    w.key("served");
    w.value(r.served);
    w.key("shed");
    w.value(r.shed);
    w.key("outliers");
    w.value(r.outliers);
    w.key("conservation");
    w.value(c.conservation);
    w.key("windows");
    w.value(static_cast<std::uint64_t>(r.response_windows.cells().size()));
    w.key("response_p50_us");
    w.value(r.response_hist.quantile(0.50));
    w.key("response_p99_us");
    w.value(r.response_hist.quantile(0.99));
    w.key("response_p999_us");
    w.value(r.response_hist.quantile(0.999));
    w.key("wait_p99_us");
    w.value(r.wait_hist.quantile(0.99));
    w.key("guilty_stage");
    w.value(r.guilty_stage);
    w.key("fingerprint");
    w.value(c.fingerprint);
    w.key("slo");
    w.begin_array();
    for (const SloReport& s : r.slo) {
      w.begin_object();
      w.key("name");
      w.value(s.spec.name);
      w.key("state");
      w.value(telemetry::to_string(s.state));
      w.key("windows");
      w.value(s.windows);
      w.key("breach_windows");
      w.value(s.breach_windows);
      w.key("first_breach_window");
      w.value(s.first_breach_window);
      w.key("burn_slow");
      w.value(s.burn_slow);
      w.key("max_burn_fast");
      w.value(s.max_burn_fast);
      w.end_object();
    }
    w.end_array();
    w.key("pass");
    w.value(c.pass);
    w.end_object();
  }
  w.end_array();
  w.key("determinism");
  w.begin_object();
  w.key("cell");
  w.value("1x");
  w.key("fingerprint_a");
  w.value(cells[1].fingerprint);
  w.key("fingerprint_b");
  w.value(repeat.fingerprint);
  w.key("match");
  w.value(determinism);
  w.end_object();
  w.key("zero_traffic");
  w.begin_object();
  w.key("enforced");
  w.value(pins_enforced);
  w.key("phases");
  w.begin_array();
  for (const PinResult& p : pins) {
    w.begin_object();
    w.key("name");
    w.value(p.name);
    w.key("fingerprint");
    w.value(p.fingerprint);
    w.key("expected");
    w.value(p.expected);
    w.key("match");
    w.value(p.match);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("gates");
  w.begin_object();
  w.key("slo_met_at_1x");
  w.value(slo_met_at_1x);
  w.key("breach_at_2x");
  w.value(breach_at_2x);
  w.key("attributed_queue_wait_at_2x");
  w.value(attributed);
  w.key("conservation");
  w.value(conservation);
  w.key("determinism");
  w.value(determinism);
  w.key("zero_traffic");
  w.value(zero_traffic_ok);
  w.key("pass");
  w.value(pass);
  w.end_object();
  w.end_object();

  const char* out = std::getenv("SSDSE_BENCH_OUT");
  if (!out) out = "BENCH_PR8.json";
  FILE* f = std::fopen(out, "w");
  if (!f) {
    std::fprintf(stderr, "ext_traffic: cannot write %s\n", out);
    return 1;
  }
  const std::string& json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out);

  return pass ? 0 : 1;
}
