// Wall-clock performance driver: measures the speed of the *simulator
// itself* (not simulated time) on a fixed workload, and emits the
// result as BENCH_PR3.json so the perf trajectory of the repo is
// tracked across PRs (ROADMAP: "runs as fast as the hardware allows").
//
// Three phases isolate the layers of the query hot path:
//  * daat  — materialized-index conjunctive top-K (DaatProcessor) on a
//            small real corpus: pure engine + index-layout cost;
//  * cache — one-level (memory-only) SearchSystem at the paper's 5M-doc
//            scale: QM/RM cache machinery without flash;
//  * ssd   — full two-level CBSLRU hierarchy (write buffer, SSD caches,
//            FTL + NAND model): the fig14-scale workload.
//
// Each phase also records a result checksum / coverage figure so a
// before/after comparison can assert the optimization changed *time
// only*, never output.
//
// Override query counts with SSDSE_QUERIES (system phases) and
// SSDSE_DAAT_QUERIES; output path with SSDSE_BENCH_OUT; the daat-phase
// processor with SSDSE_DAAT_MODE ("exhaustive" | "block-max").
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.hpp"
#include "src/engine/daat.hpp"
#include "src/hybrid/run_report.hpp"
#include "src/telemetry/tracer.hpp"
#include "src/util/rng.hpp"
#include "src/workload/query_log.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

// ssdse-lint: allow(nondeterminism) wall-clock measures real throughput only
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::uint64_t env_count(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

struct PhaseResult {
  const char* name;
  std::uint64_t queries = 0;
  double wall_ms = 0;
  double qps = 0;
  /// Output fingerprint: DAAT result checksum or request coverage in
  /// parts-per-million. Must be invariant under perf-only changes.
  std::uint64_t fingerprint = 0;
};

/// The daat-phase workload, shared with the zero-overhead trace guard.
struct DaatWorkload {
  explicit DaatWorkload(std::uint64_t queries) {
    CorpusConfig cc;
    cc.num_docs = 40'000;
    cc.vocab_size = 2'000;
    cc.terms_per_doc = 60;
    cc.max_df_fraction = 0.10;
    cc.seed = 2012;
    Rng rng(99);
    corpus = std::make_unique<MaterializedCorpus>(cc, rng);
    index = std::make_unique<MaterializedIndex>(*corpus);

    QueryLogConfig qc;
    qc.distinct_queries = 50'000;
    qc.vocab_size = cc.vocab_size;
    qc.min_terms = 2;
    qc.max_terms = 3;
    qc.seed = 17;
    QueryLogGenerator gen(qc);
    batch.reserve(queries);
    for (std::uint64_t i = 0; i < queries; ++i) batch.push_back(gen.next());
  }

  std::unique_ptr<MaterializedCorpus> corpus;
  std::unique_ptr<MaterializedIndex> index;
  std::vector<Query> batch;
};

/// The daat hot loop. `kTraced=false` compiles the span calls away
/// entirely (if constexpr), giving the guard a true tracing-compiled-out
/// baseline inside one binary; `kTraced=true` instruments each query
/// against `tracer`. Both variants must produce the same checksum.
template <bool kTraced>
std::uint64_t daat_loop(const DaatWorkload& w,
                        telemetry::QueryTracer* tracer) {
  DaatProcessor daat(/*top_k=*/kTopK);
  std::uint64_t checksum = 0;
  for (const Query& q : w.batch) {
    if constexpr (kTraced) tracer->begin_query(q.id);
    DaatStats stats;
    const ResultEntry r = daat.intersect(*w.index, q, &stats);
    checksum += stats.docs_scored + stats.postings_touched;
    for (const ScoredDoc& d : r.docs) {
      std::uint32_t bits;
      std::memcpy(&bits, &d.score, sizeof bits);
      checksum = checksum * 1099511628211ull + d.doc.raw() + bits;
    }
    if constexpr (kTraced) {
      tracer->add_span(telemetry::TraceStage::kDaatScore,
                       static_cast<Micros>(stats.postings_touched));
      tracer->end_query(static_cast<Micros>(stats.postings_touched));
    }
  }
  return checksum;
}

/// Phase 1: the DAAT engine on a materialized index. Build cost (the
/// one-time doc-sorted materialization) is excluded: the simulator
/// builds once and serves millions of queries.
///
/// SSDSE_DAAT_MODE selects the processor ("exhaustive" default,
/// "block-max" for the pruned path). Exhaustive stays the default: the
/// pinned fingerprint folds DaatStats, which pruning legitimately
/// changes (the results never do — BENCH_PR7.json gates that).
PhaseResult run_daat_phase(std::uint64_t queries, DaatMode mode) {
  DaatWorkload w(queries);
  if (mode == DaatMode::kBlockMax) {
    MaxScoreDaatProcessor daat(/*top_k=*/kTopK);
    const auto t0 = Clock::now();
    std::uint64_t checksum = 0;
    for (const Query& q : w.batch) {
      DaatStats stats;
      const ResultEntry r = daat.intersect(*w.index, q, &stats);
      checksum += stats.docs_scored + stats.postings_touched;
      for (const ScoredDoc& d : r.docs) {
        std::uint32_t bits;
        std::memcpy(&bits, &d.score, sizeof bits);
        checksum = checksum * 1099511628211ull + d.doc.raw() + bits;
      }
    }
    const double wall = ms_since(t0);
    return PhaseResult{"daat", queries, wall,
                       1000.0 * static_cast<double>(queries) / wall,
                       checksum};
  }
  const auto t0 = Clock::now();
  const std::uint64_t checksum = daat_loop<false>(w, nullptr);
  const double wall = ms_since(t0);
  return PhaseResult{"daat", queries, wall,
                     1000.0 * static_cast<double>(queries) / wall,
                     checksum};
}

/// Zero-overhead guard: the telemetry layer must never tax the hot path
/// when it is off. Runs the daat loop with spans compiled out and with
/// spans compiled in against an idle (runtime-disabled) tracer, in
/// alternating min-of-N pairs; the checksums must match bit-for-bit and
/// the instrumented wall time must stay within 10 %.
struct TraceGuardResult {
  std::uint64_t fingerprint_off = 0;
  std::uint64_t fingerprint_on = 0;
  double wall_ratio = 0;  // instrumented-idle / compiled-out (min-of-N)
  bool enforced = false;  // qps bound enforced (Release builds)
  bool pass = false;
};

TraceGuardResult run_trace_guard(std::uint64_t queries) {
  DaatWorkload w(queries);
  telemetry::QueryTracer tracer;
  tracer.set_enabled(false);  // compiled in, runtime-idle

  TraceGuardResult g;
  double best_off = 0, best_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = Clock::now();
    g.fingerprint_off = daat_loop<false>(w, nullptr);
    const double off = ms_since(t0);
    t0 = Clock::now();
    g.fingerprint_on = daat_loop<true>(w, &tracer);
    const double on = ms_since(t0);
    if (rep == 0 || off < best_off) best_off = off;
    if (rep == 0 || on < best_on) best_on = on;
  }
  g.wall_ratio = best_off > 0 ? best_on / best_off : 1.0;
#ifdef NDEBUG
  g.enforced = true;
#endif
  g.pass = g.fingerprint_off == g.fingerprint_on &&
           (!g.enforced || g.wall_ratio <= 1.10);
  return g;
}

/// Shared body of the two system phases: run the fixed query stream,
/// time it, fingerprint the request coverage. When `report_path` is
/// set, the phase additionally emits the telemetry run report.
PhaseResult run_system_phase(const char* name, SystemConfig cfg,
                             std::uint64_t queries,
                             const char* report_path = nullptr) {
  SearchSystem system(cfg);
  const auto t0 = Clock::now();
  system.run(queries);
  system.drain();
  const double wall = ms_since(t0);
  if (report_path != nullptr &&
      !write_run_report(system, name, report_path)) {
    std::fprintf(stderr, "perf_driver: cannot write %s\n", report_path);
    std::exit(1);
  }
  const auto coverage_ppm = static_cast<std::uint64_t>(
      1e6 * system.metrics().request_coverage());
  return PhaseResult{name, queries, wall,
                     1000.0 * static_cast<double>(queries) / wall,
                     coverage_ppm};
}

/// Phase 2: memory-only cache hierarchy at web scale (no flash model).
PhaseResult run_cache_phase(std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCblru);
  cfg.cache.l2 = false;
  cfg.set_memory_budget(64 * MiB);
  cfg.cache.l2 = false;  // set_memory_budget sizes SSD fields; keep off
  cfg.training_queries = 0;
  return run_system_phase("cache", cfg, queries);
}

/// Phase 3: the full two-level hierarchy — the fig14_hit_ratio-scale
/// cell (5M docs, CBSLRU, 10 MiB memory budget, SSD 10x/100x). This is
/// the phase whose telemetry report the CI schema check validates.
PhaseResult run_ssd_phase(std::uint64_t queries, const char* report_path) {
  SystemConfig cfg = paper_system(CachePolicy::kCbslru);
  return run_system_phase("ssd", cfg, queries, report_path);
}

void write_json(const char* path, const std::vector<PhaseResult>& phases,
                const TraceGuardResult& guard) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "perf_driver: cannot write %s\n", path);
    std::exit(1);
  }
  std::uint64_t total_q = 0;
  double total_ms = 0;
  for (const auto& p : phases) {
    total_q += p.queries;
    total_ms += p.wall_ms;
  }
  std::fprintf(f, "{\n  \"bench\": \"perf_driver\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& p = phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"queries\": %llu, "
                 "\"wall_ms\": %.3f, \"qps\": %.1f, "
                 "\"fingerprint\": %llu}%s\n",
                 p.name, static_cast<unsigned long long>(p.queries),
                 p.wall_ms, p.qps,
                 static_cast<unsigned long long>(p.fingerprint),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"trace_guard\": {\"fingerprint_match\": %s, "
               "\"wall_ratio\": %.4f, \"enforced\": %s, \"pass\": %s},\n",
               guard.fingerprint_off == guard.fingerprint_on ? "true"
                                                             : "false",
               guard.wall_ratio, guard.enforced ? "true" : "false",
               guard.pass ? "true" : "false");
  std::fprintf(f,
               "  \"total\": {\"queries\": %llu, \"wall_ms\": %.3f, "
               "\"qps\": %.1f}\n}\n",
               static_cast<unsigned long long>(total_q), total_ms,
               1000.0 * static_cast<double>(total_q) / total_ms);
  std::fclose(f);
}

}  // namespace

int main() {
  print_environment("perf driver — simulator wall-clock throughput");
  const auto system_queries = default_queries(40'000);
  const auto daat_queries = env_count("SSDSE_DAAT_QUERIES", 20'000);
  const char* out = std::getenv("SSDSE_BENCH_OUT");
  if (!out) out = "BENCH_PR3.json";
  const char* telemetry_out = std::getenv("SSDSE_TELEMETRY_OUT");
  if (!telemetry_out) telemetry_out = "TELEMETRY.json";

  const char* mode_name = std::getenv("SSDSE_DAAT_MODE");
  const DaatMode mode =
      mode_name != nullptr ? daat_mode(mode_name) : DaatMode::kExhaustive;

  std::vector<PhaseResult> phases;
  phases.push_back(run_daat_phase(daat_queries, mode));
  std::printf("  daat : %8.1f q/s  (%.0f ms, fingerprint %llu)\n",
              phases.back().qps, phases.back().wall_ms,
              static_cast<unsigned long long>(phases.back().fingerprint));
  phases.push_back(run_cache_phase(system_queries));
  std::printf("  cache: %8.1f q/s  (%.0f ms, coverage %llu ppm)\n",
              phases.back().qps, phases.back().wall_ms,
              static_cast<unsigned long long>(phases.back().fingerprint));
  phases.push_back(run_ssd_phase(system_queries, telemetry_out));
  std::printf("  ssd  : %8.1f q/s  (%.0f ms, coverage %llu ppm)\n",
              phases.back().qps, phases.back().wall_ms,
              static_cast<unsigned long long>(phases.back().fingerprint));

  const TraceGuardResult guard = run_trace_guard(daat_queries);
  std::printf("  trace guard: wall ratio %.3f (idle-instrumented / "
              "compiled-out), fingerprints %s%s\n",
              guard.wall_ratio,
              guard.fingerprint_off == guard.fingerprint_on ? "match"
                                                            : "DIFFER",
              guard.enforced ? "" : " [ratio not enforced: debug build]");

  write_json(out, phases, guard);
  std::printf("wrote %s and %s\n", out, telemetry_out);

  if (!guard.pass) {
    std::fprintf(stderr,
                 "perf_driver: zero-overhead trace guard FAILED "
                 "(ratio %.3f, fingerprints %llu vs %llu)\n",
                 guard.wall_ratio,
                 static_cast<unsigned long long>(guard.fingerprint_off),
                 static_cast<unsigned long long>(guard.fingerprint_on));
    return 1;
  }
  return 0;
}
