// Shared helpers for the reproduction benches: the standard experiment
// header (Tables II/III), common configurations, and small formatting
// utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/hybrid/run_report.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/util/table.hpp"

namespace ssdse::bench {

/// Print the simulated environment (the content of the paper's Tables
/// II and III) so every bench output is self-describing.
inline void print_environment(const char* experiment) {
  std::printf("=== %s ===\n", experiment);
  std::printf(
      "simulated environment (paper Tables II/III):\n"
      "  SSD: page-mapping FTL, 2 KiB pages, 64-page (128 KiB) blocks,\n"
      "       read 32.725 us, program 101.475 us, erase 1.5 ms\n"
      "  HDD: 7200 RPM, 0.8-12 ms seek, 100 MiB/s transfer\n"
      "  corpus: synthetic enwiki-like (Zipf df); query log: AOL-like "
      "Zipf\n\n");
}

/// Number of queries for full-system runs; override with SSDSE_QUERIES
/// to trade fidelity for speed.
inline std::uint64_t default_queries(std::uint64_t fallback = 50'000) {
  if (const char* env = std::getenv("SSDSE_QUERIES")) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

/// The paper's standard 5M-document cell.
inline SystemConfig paper_system(CachePolicy policy,
                                 std::uint64_t docs = 5'000'000,
                                 Bytes mem_budget = 10 * MiB) {
  SystemConfig cfg;
  cfg.set_num_docs(docs);
  cfg.set_memory_budget(mem_budget);
  cfg.cache.policy = policy;
  cfg.training_queries = 10'000;
  return cfg;
}

inline std::string fmt_ms(Micros us) { return Table::num(us / kMillisecond, 2); }

/// Figure benches emit a telemetry run report for their representative
/// cell when SSDSE_TELEMETRY_OUT names a path (perf_driver always
/// emits; see DESIGN.md §9 for the schema).
inline void maybe_write_report(const SearchSystem& sys,
                               const std::string& run_name,
                               const TrafficResult* traffic = nullptr,
                               const ReplicationSnapshot* replication = nullptr) {
  if (const char* path = std::getenv("SSDSE_TELEMETRY_OUT")) {
    if (write_run_report(sys, run_name, path, traffic, replication)) {
      std::printf("wrote telemetry report %s (%s)\n", path,
                  run_name.c_str());
    } else {
      std::fprintf(stderr, "cannot write telemetry report %s\n", path);
    }
  }
}

}  // namespace ssdse::bench
