// Micro-benchmarks (google-benchmark): raw cost of the storage substrate
// operations — NAND ops, FTL writes under different locality, SSD
// sector I/O, HDD seeks. These measure *simulator* throughput (host ops
// per wall-clock second), guarding against regressions that would make
// the full-figure benches impractically slow.
#include <benchmark/benchmark.h>

#include "src/ftl/factory.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/ssd/ssd.hpp"
#include "src/storage/hdd.hpp"
#include "src/util/rng.hpp"

namespace ssdse {
namespace {

NandConfig bench_nand() {
  NandConfig cfg;
  cfg.num_blocks = 1024;
  return cfg;
}

void BM_NandProgramErase(benchmark::State& state) {
  NandArray nand(bench_nand());
  const auto ppb = nand.config().pages_per_block;
  std::uint64_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nand.program_page(page, page));
    if (++page % ppb == 0) {
      const Pbn blk = static_cast<Pbn>(page / ppb - 1);
      benchmark::DoNotOptimize(nand.erase_block(blk));
      page -= ppb;
    }
  }
}
BENCHMARK(BM_NandProgramErase);

void BM_FtlWrite(benchmark::State& state, const std::string& scheme,
                 bool sequential) {
  NandArray nand(bench_nand());
  auto ftl = make_ftl(scheme, nand);
  Rng rng(7);
  const Lpn n = ftl->logical_pages();
  Lpn cursor = 0;
  for (auto _ : state) {
    const Lpn lpn = sequential ? (cursor++ % n) : rng.next_below(n);
    benchmark::DoNotOptimize(ftl->write(lpn));
  }
}
BENCHMARK_CAPTURE(BM_FtlWrite, page_sequential, "page", true);
BENCHMARK_CAPTURE(BM_FtlWrite, page_random, "page", false);
BENCHMARK_CAPTURE(BM_FtlWrite, hybrid_random, "hybrid-log", false);
BENCHMARK_CAPTURE(BM_FtlWrite, dftl_random, "dftl", false);

void BM_FtlRead(benchmark::State& state) {
  NandArray nand(bench_nand());
  PageFtl ftl(nand);
  for (Lpn p = 0; p < 4096; ++p) benchmark::DoNotOptimize(ftl.write(p));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.read(rng.next_below(4096)));
  }
}
BENCHMARK(BM_FtlRead);

void BM_SsdSectorWrite(benchmark::State& state) {
  SsdConfig cfg;
  cfg.nand = bench_nand();
  Ssd ssd(cfg);
  Rng rng(9);
  const Lba max_lba = ssd.capacity_bytes() / kSectorSize - 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ssd.write(rng.next_below(max_lba), static_cast<std::uint32_t>(
                                               state.range(0))));
  }
}
BENCHMARK(BM_SsdSectorWrite)->Arg(8)->Arg(64)->Arg(256);

void BM_HddRandomRead(benchmark::State& state) {
  HddModel hdd;
  Rng rng(10);
  const Lba max_lba = hdd.capacity_bytes() / kSectorSize - 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdd.read(rng.next_below(max_lba), 512));
  }
}
BENCHMARK(BM_HddRandomRead);

}  // namespace
}  // namespace ssdse
