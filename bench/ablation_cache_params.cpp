// Ablation (beyond the paper): the design knobs DESIGN.md calls out —
// the Replace-First window W (Figs. 11/13), the TEV admission filter,
// and CBSLRU's static fraction.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct Cell {
  double hit_ratio;
  Micros response;
  std::uint64_t erases;
};

Cell run(const SystemConfig& cfg, std::uint64_t queries) {
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  return {system.cache_manager().stats().hit_ratio(),
          system.metrics().mean_response(),
          system.cache_ssd()->block_erases()};
}

}  // namespace

int main() {
  print_environment("Ablation — W window, TEV filter, static fraction");
  const auto queries = default_queries(25'000);
  const std::uint64_t docs = 2'000'000;
  const Bytes budget = 6 * MiB;

  std::printf("--- Replace-First window W (CBLRU) ---\n");
  Table w({"W", "hit ratio", "resp (ms)", "block erases"});
  for (std::uint32_t window : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, docs, budget);
    cfg.cache.replace_window = window;
    const Cell c = run(cfg, queries);
    w.add_row({Table::integer(window), Table::percent(c.hit_ratio),
               fmt_ms(c.response),
               Table::integer(static_cast<long long>(c.erases))});
    std::printf("  ... W=%u done\n", window);
  }
  w.print();

  std::printf("\n--- TEV admission (keep-fraction of training terms) ---\n");
  Table tev({"keep fraction", "TEV", "hit ratio", "resp (ms)",
             "block erases"});
  for (double keep : {1.0, 0.95, 0.9, 0.7, 0.5, 0.25}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, docs, budget);
    // Derive TEV from a private analysis so each cell is independent.
    AnalyticIndex probe(cfg.corpus);
    const auto analysis =
        analyze_log(cfg.log, probe, cfg.training_queries, 128 * KiB);
    cfg.cache.tev =
        keep >= 1.0 ? 1e-12 : analysis.tev_for_fraction(keep);
    const Cell c = run(cfg, queries);
    tev.add_row({Table::num(keep, 2), Table::num(cfg.cache.tev, 4),
                 Table::percent(c.hit_ratio), fmt_ms(c.response),
                 Table::integer(static_cast<long long>(c.erases))});
    std::printf("  ... keep=%.2f done\n", keep);
  }
  tev.print();

  std::printf("\n--- CBSLRU static fraction ---\n");
  Table sf({"static fraction", "hit ratio", "resp (ms)", "block erases"});
  for (double frac : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    SystemConfig cfg = paper_system(CachePolicy::kCbslru, docs, budget);
    cfg.cache.static_fraction = frac;
    const Cell c = run(cfg, queries);
    sf.add_row({Table::num(frac, 2), Table::percent(c.hit_ratio),
                fmt_ms(c.response),
                Table::integer(static_cast<long long>(c.erases))});
    std::printf("  ... static=%.2f done\n", frac);
  }
  sf.print();

  std::printf(
      "\n--- SieveStore-style admission (threshold; replaces TEV) ---\n");
  Table sv({"sieve threshold", "hit ratio", "resp (ms)", "block erases",
            "SSD list inserts"});
  for (std::uint32_t threshold : {0u, 2u, 3u, 5u}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, docs, budget);
    cfg.cache.sieve_threshold = threshold;
    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    sv.add_row({threshold == 0 ? "off (TEV)" : Table::integer(threshold),
                Table::percent(system.cache_manager().stats().hit_ratio()),
                fmt_ms(system.metrics().mean_response()),
                Table::integer(static_cast<long long>(
                    system.cache_ssd()->block_erases())),
                Table::integer(static_cast<long long>(
                    system.cache_manager().ssd_lists()->stats().inserts))});
    std::printf("  ... sieve=%u done\n", threshold);
  }
  sv.print();

  std::printf("\n--- session burstiness (workload sensitivity) ---\n");
  Table bu({"burst probability", "hit ratio", "resp (ms)"});
  for (double burst : {0.0, 0.2, 0.4}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, docs, budget);
    cfg.log.burst_probability = burst;
    const Cell c = run(cfg, queries);
    bu.add_row({Table::num(burst, 2), Table::percent(c.hit_ratio),
                fmt_ms(c.response)});
    std::printf("  ... burst=%.2f done\n", burst);
  }
  bu.print();
  return 0;
}
