// Fig. 4 — efficiency value (EV = Freq / SC) vs ranked terms, and the
// TEV tiering: the most efficient lists belong in memory, the next tier
// on SSD, and everything under TEV stays on HDD.
#include "bench/bench_common.hpp"
#include "src/workload/log_analysis.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Fig. 4 — efficiency value vs ranked terms");

  SystemConfig cfg = paper_system(CachePolicy::kCblru);
  AnalyticIndex index(cfg.corpus);
  const auto analysis =
      analyze_log(cfg.log, index, default_queries(100'000), 128 * KiB);

  Table t({"ev_rank", "term_id", "freq", "SC_blocks", "EV"});
  const auto& terms = analysis.terms_by_ev;
  for (std::size_t rank = 0; rank < terms.size();
       rank += rank < 20 ? 1 : std::max<std::size_t>(terms.size() / 60, 1)) {
    const auto& te = terms[rank];
    t.add_row({Table::integer(static_cast<long long>(rank)),
               Table::integer(te.term.raw()),
               Table::integer(static_cast<long long>(te.freq)),
               Table::integer(te.sc_blocks), Table::num(te.ev, 3)});
  }
  t.print();

  // Tiering thresholds: memory gets the top slice that fits a 10 MiB
  // list budget, SSD the next 100x slice, HDD the rest (TEV).
  Bytes mem_budget = 8 * MiB, ssd_budget = 800 * MiB;
  double ev_mem = 0, ev_ssd = 0;
  std::size_t n_mem = 0, n_ssd = 0;
  for (const auto& te : terms) {
    const Bytes bytes = static_cast<Bytes>(te.sc_blocks) * 128 * KiB;
    if (mem_budget >= bytes) {
      mem_budget -= bytes;
      ev_mem = te.ev;
      ++n_mem;
    } else if (ssd_budget >= bytes) {
      ssd_budget -= bytes;
      ev_ssd = te.ev;
      ++n_ssd;
    }
  }
  std::printf(
      "\ntiering (Fig. 4): memory tier: %zu terms (EV >= %.3f)\n"
      "                 SSD tier:    %zu terms (EV >= %.3f)\n"
      "                 HDD (below TEV): %zu terms\n",
      n_mem, ev_mem, n_ssd, ev_ssd, terms.size() - n_mem - n_ssd);
  std::printf("TEV at keep-fraction 0.9: %.4f\n",
              analysis.tev_for_fraction(0.9));
  return 0;
}
