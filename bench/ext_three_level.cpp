// Extension bench (paper §VIII future work): three-level caching —
// results + inverted lists + intersections (Long & Suel WWW'05).
// Compares the evaluated two-level hierarchy against the same hierarchy
// plus an in-memory intersection cache of growing capacity.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Extension — three-level caching (intersections)");
  const auto queries = default_queries(25'000);

  Table t({"intersection cache", "hit ratio", "resp (ms)",
           "list fetches", "HDD list reads", "ix hits"});
  for (Bytes cap : {Bytes{0}, 2 * MiB, 8 * MiB, 32 * MiB}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, 2'000'000, 6 * MiB);
    cfg.cache.intersection_capacity = cap;
    cfg.log.min_terms = 2;  // intersections need multi-term queries
    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    const auto& cs = system.cache_manager().stats();
    const auto* ic = system.cache_manager().intersections();
    t.add_row({cap == 0 ? "disabled (2LC)"
                        : Table::num(static_cast<double>(cap) / MiB, 0) +
                              " MiB",
               Table::percent(cs.hit_ratio()),
               fmt_ms(system.metrics().mean_response()),
               Table::integer(static_cast<long long>(cs.list_lookups)),
               Table::integer(static_cast<long long>(cs.hdd_list_reads)),
               Table::integer(
                   ic ? static_cast<long long>(ic->stats().hits) : 0)});
    std::printf("  ... %llu MiB done\n",
                static_cast<unsigned long long>(cap / MiB));
  }
  t.print();
  std::printf(
      "\nexpected: intersection hits replace pairs of list fetches, cutting\n"
      "both cache pressure and HDD reads — the gain Long & Suel report and\n"
      "the paper projects for its three-level future work.\n");
  return 0;
}
