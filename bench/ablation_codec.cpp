// Ablation: posting-list compression codec. Compression shrinks on-disk
// list sizes, which shrinks SC (Formula 1), raises EV (Formula 2) and
// lets every cache level hold more lists — compounding with the paper's
// policies.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Ablation — posting-list compression codec");
  const auto queries = default_queries(25'000);

  Table t({"codec", "index bytes (MiB)", "hit ratio", "resp (ms)",
           "HDD list reads", "block erases"});
  for (const std::string& codec :
       {std::string("raw"), std::string("group-varint"),
        std::string("varint")}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, 2'000'000, 6 * MiB);
    cfg.corpus.codec = codec;
    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    const auto& cs = system.cache_manager().stats();
    t.add_row({codec,
               Table::num(static_cast<double>(
                              system.index().layout().total_bytes()) /
                              MiB, 0),
               Table::percent(cs.hit_ratio()),
               fmt_ms(system.metrics().mean_response()),
               Table::integer(static_cast<long long>(cs.hdd_list_reads)),
               Table::integer(static_cast<long long>(
                   system.cache_ssd()->block_erases()))});
    std::printf("  ... %s done\n", codec.c_str());
  }
  t.print();
  std::printf(
      "\nexpected: compressed postings (varint ~%0.0f%% of raw) raise hit\n"
      "ratios and cut index-store traffic at identical cache budgets.\n",
      100.0 * 5.0 / 8.0);
  return 0;
}
