// Ablation: posting-list compression codec. Compression shrinks on-disk
// list sizes, which shrinks SC (Formula 1), raises EV (Formula 2) and
// lets every cache level hold more lists — compounding with the paper's
// policies. A second section ablates block-max pruning on a
// materialized index (DESIGN.md §13): exhaustive vs pruned DAAT,
// per-codec, with the bit-identical-results verdict in the table.
#include <algorithm>
#include <chrono>

#include "bench/bench_common.hpp"
#include "src/engine/daat.hpp"
#include "src/util/rng.hpp"
#include "src/workload/query_log.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

/// Exhaustive-vs-pruned cells on a materialized corpus built with
/// `codec`. Returns rows for both pruning settings.
void pruning_cells(const std::string& codec, std::uint64_t queries,
                   Table& t) {
  CorpusConfig cc;
  cc.num_docs = 40'000;
  cc.vocab_size = 2'000;
  cc.terms_per_doc = 60;
  cc.max_df_fraction = 0.10;
  cc.seed = 2012;
  cc.codec = codec;
  Rng rng(99);
  MaterializedCorpus corpus(cc, rng);
  MaterializedIndex index(corpus);

  QueryLogConfig qc;
  qc.distinct_queries = 50'000;
  qc.vocab_size = cc.vocab_size;
  qc.min_terms = 2;
  qc.max_terms = 3;
  qc.seed = 17;
  QueryLogGenerator gen(qc);
  std::vector<Query> batch;
  batch.reserve(queries);
  for (std::uint64_t i = 0; i < queries; ++i) batch.push_back(gen.next());

  // ssdse-lint: allow(nondeterminism) wall-clock measures real throughput only
  using Clock = std::chrono::steady_clock;
  DaatProcessor oracle(kTopK);
  std::vector<ResultEntry> reference;
  reference.reserve(batch.size());
  auto t0 = Clock::now();
  for (const Query& q : batch) {
    reference.push_back(oracle.intersect(index, q));
  }
  const double oracle_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  MaxScoreDaatProcessor pruned(kTopK);
  bool identical = true;
  t0 = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ResultEntry r = pruned.intersect(index, batch[i]);
    identical &= r.docs == reference[i].docs;
  }
  const double pruned_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  const double encoded_mib =
      static_cast<double>(index.block_store().encoded_bytes()) / MiB;
  t.add_row({codec, "off",
             Table::num(encoded_mib, 1),
             Table::num(1000.0 * static_cast<double>(queries) / oracle_ms, 0),
             Table::integer(0), "n/a"});
  t.add_row({codec, "on",
             Table::num(encoded_mib, 1),
             Table::num(1000.0 * static_cast<double>(queries) / pruned_ms, 0),
             Table::integer(
                 static_cast<long long>(pruned.pruning().prune_jumps)),
             identical ? "identical" : "DIVERGED"});
}

}  // namespace

int main() {
  print_environment("Ablation — posting-list compression codec");
  const auto queries = default_queries(25'000);

  Table t({"codec", "index bytes (MiB)", "hit ratio", "resp (ms)",
           "HDD list reads", "block erases"});
  for (const std::string& codec :
       {std::string("raw"), std::string("group-varint"),
        std::string("varint"), std::string("block-packed"),
        std::string("stream-vbyte")}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, 2'000'000, 6 * MiB);
    cfg.corpus.codec = codec;
    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    const auto& cs = system.cache_manager().stats();
    t.add_row({codec,
               Table::num(static_cast<double>(
                              system.index().layout().total_bytes()) /
                              MiB, 0),
               Table::percent(cs.hit_ratio()),
               fmt_ms(system.metrics().mean_response()),
               Table::integer(static_cast<long long>(cs.hdd_list_reads)),
               Table::integer(static_cast<long long>(
                   system.cache_ssd()->block_erases()))});
    std::printf("  ... %s done\n", codec.c_str());
  }
  t.print();
  std::printf(
      "\nexpected: compressed postings (varint ~%0.0f%% of raw) raise hit\n"
      "ratios and cut index-store traffic at identical cache budgets.\n",
      100.0 * 5.0 / 8.0);

  // Block-max pruning on/off, per block codec, on the perf_driver daat
  // corpus. The "top-K" column is the safety verdict: pruning must be
  // a pure speedup, never a result change.
  std::printf("\n");
  const auto daat_queries =
      std::min<std::uint64_t>(queries, default_queries(10'000));
  Table p({"codec", "pruning", "encoded (MiB)", "q/s", "prune jumps",
           "top-K"});
  pruning_cells("block-packed", daat_queries, p);
  pruning_cells("stream-vbyte", daat_queries, p);
  p.print();
  return 0;
}
