// Extension bench: latency under load. Service times measured by the
// closed-loop simulator feed an open-loop FIFO queue with Poisson
// arrivals — showing where each policy's latency hockey-stick bends
// (LRU saturates earliest: its service times are longest and its flash
// writes steal the most device time).
#include <vector>

#include "bench/bench_common.hpp"
#include "src/hybrid/load_model.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

std::vector<Micros> measure_service_times(CachePolicy policy,
                                          std::uint64_t queries) {
  SystemConfig cfg = paper_system(policy, 2'000'000, 6 * MiB);
  SearchSystem system(cfg);
  std::vector<Micros> service;
  service.reserve(queries);
  // Exclude one-time setup flash work (CBSLRU static preload) — only
  // steady-state background writes are charged to queries.
  Micros background_prev = system.background_flash_time();
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto out = system.execute(system.generator().next());
    // Charge this query's share of background flash time to its service
    // (the device is shared; under open-loop load it must be paid).
    const Micros background_now = system.background_flash_time();
    service.push_back(out.response + (background_now - background_prev));
    background_prev = background_now;
  }
  system.drain();
  return service;
}

}  // namespace

int main() {
  print_environment("Extension — latency vs offered load (open loop)");
  const auto queries = default_queries(20'000);

  std::vector<std::vector<Micros>> service;
  const CachePolicy policies[] = {CachePolicy::kLru, CachePolicy::kCblru,
                                  CachePolicy::kCbslru};
  for (CachePolicy p : policies) {
    std::printf("measuring %s service times...\n", to_string(p));
    service.push_back(measure_service_times(p, queries));
  }

  Table t({"offered load (q/s)", "LRU p99 (ms)", "CBLRU p99 (ms)",
           "CBSLRU p99 (ms)", "LRU util", "CBSLRU util"});
  for (double qps : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 140.0}) {
    std::vector<LoadPoint> pts;
    for (std::size_t i = 0; i < service.size(); ++i) {
      Rng rng(1234);  // same arrival process for every policy
      pts.push_back(simulate_open_loop(service[i], qps, rng));
    }
    t.add_row({Table::num(qps, 0),
               fmt_ms(pts[0].p99_response), fmt_ms(pts[1].p99_response),
               fmt_ms(pts[2].p99_response),
               Table::percent(std::min(pts[0].utilization, 1.0)),
               Table::percent(std::min(pts[2].utilization, 1.0))});
  }
  t.print();
  std::printf(
      "\nexpected: every policy is flat at low load; LRU's queue blows up\n"
      "first (longest service + most background flash work), CBSLRU\n"
      "sustains the highest offered load before its knee.\n");
  return 0;
}
