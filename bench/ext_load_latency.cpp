// Extension bench: latency under load (the paper's own load/latency
// extension), ported onto the open-loop arrival harness (DESIGN.md
// §14). Each policy serves a seeded Poisson arrival stream through a
// bounded FIFO admission queue; the swept offered load shows where
// each policy's latency hockey-stick bends (LRU saturates earliest:
// its service times are longest and its flash writes steal the most
// device time). Queueing delay is measured, not modelled: response =
// wait + service per query, with shedding once the queue cap is hit.
//
// Emits the CBSLRU knee-point run report — including the
// traffic/windows/slo/attribution sections — when SSDSE_TELEMETRY_OUT
// is set (like ext_warm_restart/ext_faults).
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/hybrid/traffic.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct PolicyRun {
  CachePolicy policy;
  std::unique_ptr<SearchSystem> system;
  std::unique_ptr<SystemTrafficTarget> target;
  Micros mean_service = micros(0);
};

/// Closed-loop warmup + calibration: steady-state mean service time
/// (background flash included) for one policy.
Micros calibrate(PolicyRun& run, std::uint64_t queries) {
  StreamingStats stats;
  for (std::uint64_t i = 0; i < queries; ++i) {
    stats.add(run.target->serve(run.system->generator().next()));
  }
  return micros(stats.mean());
}

}  // namespace

int main() {
  print_environment("Extension — latency vs offered load (open loop)");
  const std::uint64_t queries = default_queries(20'000);
  const std::uint64_t per_point = std::max<std::uint64_t>(queries / 4, 1'000);

  const CachePolicy policies[] = {CachePolicy::kLru, CachePolicy::kCblru,
                                  CachePolicy::kCbslru};
  std::vector<PolicyRun> runs;
  for (CachePolicy p : policies) {
    std::printf("calibrating %s service times...\n", to_string(p));
    PolicyRun run;
    run.policy = p;
    run.system = std::make_unique<SearchSystem>(
        paper_system(p, 2'000'000, 6 * MiB));
    run.target = std::make_unique<SystemTrafficTarget>(*run.system);
    run.mean_service = calibrate(run, per_point);
    runs.push_back(std::move(run));
  }

  // Common load axis: fractions of the *fastest* policy's single-server
  // saturation rate, so the slower policies visibly knee first.
  double best_mean = runs.front().mean_service.value();
  for (const PolicyRun& r : runs) {
    best_mean = std::min(best_mean, r.mean_service.value());
  }
  const double saturation_qps = kSecond.value() / std::max(best_mean, 1.0);

  telemetry::SloSpec slo;
  slo.name = "p99_latency";
  slo.quantile = 0.99;
  slo.compliance_windows = 10;

  Table t({"offered load (q/s)", "LRU p99 (ms)", "CBLRU p99 (ms)",
           "CBSLRU p99 (ms)", "LRU shed", "CBSLRU shed"});
  const double fractions[] = {0.25, 0.5, 0.7, 0.85, 1.0, 1.2};
  for (const double frac : fractions) {
    const double qps = frac * saturation_qps;
    std::vector<TrafficResult> points;
    for (PolicyRun& run : runs) {
      TrafficConfig cfg;
      cfg.arrival.base_qps = qps;
      cfg.arrival.seed = 1234;  // same arrival process for every policy
      cfg.offered = per_point;
      cfg.servers = 1;
      cfg.queue_capacity = 512;
      cfg.window = kSecond;
      slo.threshold_us = 12.0 * run.mean_service.value();
      cfg.slos = {slo};
      points.push_back(
          run_traffic(*run.target, run.system->generator(), cfg));
      // The CBSLRU knee point carries the representative run report.
      if (run.policy == CachePolicy::kCbslru && frac == 1.0) {
        maybe_write_report(*run.system, "ext_load_latency", &points.back());
      }
    }
    const auto shed_pct = [](const TrafficResult& r) {
      return r.offered == 0 ? 0.0
                            : static_cast<double>(r.shed) /
                                  static_cast<double>(r.offered);
    };
    t.add_row({Table::num(qps, 0),
               fmt_ms(micros(points[0].response_hist.quantile(0.99))),
               fmt_ms(micros(points[1].response_hist.quantile(0.99))),
               fmt_ms(micros(points[2].response_hist.quantile(0.99))),
               Table::percent(shed_pct(points[0])),
               Table::percent(shed_pct(points[2]))});
  }
  t.print();
  std::printf(
      "\nexpected: every policy is flat at low load; LRU's queue blows up\n"
      "first (longest service + most background flash work), CBSLRU\n"
      "sustains the highest offered load before its knee and sheds the\n"
      "least at saturation.\n");
  return 0;
}
