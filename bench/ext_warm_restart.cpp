// Extension bench: warm restart from persisted SSD cache metadata
// (src/recovery). A production restart normally pays the cold-start
// cliff — the SSD still holds every cached block, but the DRAM maps
// that name them died with the process. With the persistence subsystem
// the restarted server recovers those maps from the last snapshot plus
// the journal tail and keeps the flash-resident working set.
//
// Phases per policy:
//   A  warm-up to steady state, measure the final window, checkpoint;
//   B  restart against the same metadata dir (warm), measure the first
//      window after recovery;
//   C  cold baseline: identical config, fresh caches, same window.
// Acceptance bar: the warm early window sits within 5 % of the
// pre-restart steady-state hit ratio.
#include <filesystem>
#include <string>

#include "bench/bench_common.hpp"
#include "src/util/crash_point.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct Window {
  double hit_ratio = 0;
  Micros mean_response = micros(0);
};

Window run_window(SearchSystem& system, std::uint64_t queries) {
  const CacheManagerStats& st = system.cache_manager().stats();
  const auto hits0 = st.result_hits_mem + st.result_hits_ssd +
                     st.list_hits_mem + st.list_hits_ssd;
  const auto lookups0 = st.result_lookups + st.list_lookups;
  Micros sum = micros(0);
  for (std::uint64_t i = 0; i < queries; ++i) {
    sum += system.execute(system.generator().next()).response;
  }
  const auto hits = st.result_hits_mem + st.result_hits_ssd +
                    st.list_hits_mem + st.list_hits_ssd - hits0;
  const auto lookups = st.result_lookups + st.list_lookups - lookups0;
  Window w;
  w.hit_ratio = lookups ? static_cast<double>(hits) /
                              static_cast<double>(lookups)
                        : 0.0;
  w.mean_response = queries ? sum / static_cast<double>(queries) : Micros{};
  return w;
}

WarmRestartReport measure(CachePolicy policy, std::uint64_t warmup,
                          std::uint64_t window) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("ssdse_warm_restart_") + to_string(policy));
  std::filesystem::remove_all(dir);

  SystemConfig cfg = paper_system(policy, 2'000'000, 6 * MiB);
  cfg.recovery.enabled = true;
  cfg.recovery.dir = dir.string();

  WarmRestartReport report;
  report.window_queries = window;

  {  // Phase A: reach steady state, then persist the metadata.
    SearchSystem a(cfg);
    a.run(warmup > window ? warmup - window : 0);
    report.steady_hit_ratio = run_window(a, window).hit_ratio;
    a.checkpoint();
  }

  {  // Phase B: restart against the persisted metadata (warm).
    SearchSystem b(cfg);
    if (!b.warm_started()) {
      std::fprintf(stderr, "warm restart failed for %s\n", to_string(policy));
      std::exit(1);
    }
    const Window w = run_window(b, window);
    report.warm_hit_ratio = w.hit_ratio;
    report.warm_mean_response = w.mean_response;
    report.recovery_flash_time = b.recovery_stats()->restore_flash_time;
    report.recovery_wall_ms = b.recovery_stats()->recovery_wall_ms;
    // Telemetry run report for the recovered system (SSDSE_TELEMETRY_OUT).
    maybe_write_report(b, "ext_warm_restart");
  }

  {  // Phase C: cold baseline — same config, fresh caches.
    SystemConfig cold_cfg = cfg;
    cold_cfg.recovery.enabled = false;
    SearchSystem c(cold_cfg);
    const Window w = run_window(c, window);
    report.cold_hit_ratio = w.hit_ratio;
    report.cold_mean_response = w.mean_response;
  }

  std::filesystem::remove_all(dir);
  return report;
}

}  // namespace

int main() {
  print_environment("Extension — warm restart from persisted SSD cache");
  const auto warmup = default_queries(30'000);
  const std::uint64_t window = std::max<std::uint64_t>(warmup / 6, 1'000);
  std::printf("warm-up %llu queries, measured window %llu queries\n\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(window));

  Table t({"policy", "steady HR", "warm HR", "cold HR", "warm mean (ms)",
           "cold mean (ms)", "HR gap vs steady", "recovery (ms)"});
  bool within_bar = true;
  for (CachePolicy p : {CachePolicy::kCblru, CachePolicy::kCbslru}) {
    std::printf("measuring %s restart...\n", to_string(p));
    const WarmRestartReport r = measure(p, warmup, window);
    within_bar = within_bar && r.warm_vs_steady_gap() <= 0.05;
    t.add_row({to_string(p), Table::percent(r.steady_hit_ratio),
               Table::percent(r.warm_hit_ratio),
               Table::percent(r.cold_hit_ratio),
               fmt_ms(r.warm_mean_response), fmt_ms(r.cold_mean_response),
               Table::percent(r.warm_vs_steady_gap()),
               Table::num(r.recovery_wall_ms, 2)});
  }
  std::printf("\n");
  t.print();
  std::printf(
      "\nexpected: the warm window's hit ratio lands within 5%% of the\n"
      "pre-restart steady state (acceptance bar: %s), while the cold\n"
      "restart pays the full ramp — lower hit ratio, higher mean\n"
      "response — until the SSD working set is rebuilt from scratch.\n",
      within_bar ? "met" : "MISSED");
  return within_bar ? 0 : 1;
}
