// Micro-benchmarks (google-benchmark): cache data-structure and workload
// generation hot paths — LruMap churn, the memory caches, Zipf sampling
// and query generation, and a full end-to-end query through the system.
#include <benchmark/benchmark.h>

#include "src/cache/mem_list_cache.hpp"
#include "src/cache/mem_result_cache.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/util/lru_map.hpp"
#include "src/util/zipf.hpp"
#include "src/workload/query_log.hpp"

namespace ssdse {
namespace {

void BM_LruMapChurn(benchmark::State& state) {
  LruMap<std::uint64_t, std::uint64_t> map;
  const std::uint64_t capacity = state.range(0);
  Rng rng(1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    if (rng.chance(0.7)) {
      benchmark::DoNotOptimize(map.touch(rng.next_below(capacity * 2)));
    } else {
      const std::uint64_t k = key % (capacity * 2);
      ++key;
      map.insert(k, key);
      if (map.size() > capacity) map.pop_lru();
    }
  }
}
BENCHMARK(BM_LruMapChurn)->Arg(1024)->Arg(65536);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(state.range(0), 0.9);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100'000)->Arg(1'000'000)->Arg(100'000'000);

// Alias-method counterpart of BM_ZipfSample
// (QueryLogConfig::alias_sampler opts the generator in). Measured at
// -O2 on the reference box: ~2x faster than rejection-inversion while
// the O(n) prob/alias tables fit in cache (~10 ns vs ~25 ns per sample
// up to n = 100k), crossing over once they spill to DRAM (~34 ns vs
// ~27 ns at n = 1M) — two dependent random loads lose to pure compute.
// The 100M-rank arg is omitted: a 1.2 GB table is not a sampler.
void BM_AliasZipfSample(benchmark::State& state) {
  AliasZipfSampler zipf(state.range(0), 0.9);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_AliasZipfSample)->Arg(100'000)->Arg(1'000'000);

void BM_QueryGeneration(benchmark::State& state) {
  QueryLogConfig cfg;
  cfg.alias_sampler = state.range(0) != 0;
  QueryLogGenerator gen(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_QueryGeneration)->Arg(0)->Arg(1);

void BM_MemResultCacheInsert(benchmark::State& state) {
  MemResultCache cache(10 * MiB);
  QueryId q{};
  for (auto _ : state) {
    ResultEntry e;
    e.query = q++;
    benchmark::DoNotOptimize(cache.insert(std::move(e)));
  }
}
BENCHMARK(BM_MemResultCacheInsert);

void BM_MemListCacheMixed(benchmark::State& state) {
  MemListCache cache(64 * MiB, CachePolicy::kCblru, 8);
  Rng rng(3);
  for (auto _ : state) {
    const auto term = static_cast<TermId>(rng.next_below(100'000));
    if (cache.lookup(term, 4 * KiB) == nullptr) {
      CachedList info;
      info.cached_bytes = 4 * KiB + rng.next_below(512 * KiB);
      info.full_bytes = info.cached_bytes * 2;
      info.utilization = 0.5;
      info.sc_blocks = static_cast<std::uint32_t>(
          info.cached_bytes / (128 * KiB) + 1);
      info.ev = 1.0;
      benchmark::DoNotOptimize(cache.insert(term, info));
    }
  }
}
BENCHMARK(BM_MemListCacheMixed);

void BM_EndToEndQuery(benchmark::State& state) {
  SystemConfig cfg;
  cfg.set_num_docs(1'000'000);
  cfg.set_memory_budget(16 * MiB);
  cfg.cache.policy = static_cast<CachePolicy>(state.range(0));
  cfg.training_queries = 2'000;
  SearchSystem system(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.execute(system.generator().next()));
  }
  state.counters["hit_ratio"] =
      system.cache_manager().stats().hit_ratio();
}
BENCHMARK(BM_EndToEndQuery)
    ->Arg(static_cast<int>(CachePolicy::kLru))
    ->Arg(static_cast<int>(CachePolicy::kCblru))
    ->Arg(static_cast<int>(CachePolicy::kCbslru))
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ssdse
