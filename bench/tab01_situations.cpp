// Table I — the nine retrieval situations (result / inverted lists x
// memory / SSD / HDD): measured probability and mean time cost of each,
// from a full 2LC(RI) CBLRU run.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Table I — retrieval under different situations");

  SystemConfig cfg = paper_system(CachePolicy::kCblru);
  SearchSystem system(cfg);
  const auto queries = default_queries(50'000);
  system.run(queries);
  system.drain();

  const auto& m = system.metrics();
  Table t({"situation", "probability", "mean time cost (ms)"});
  double check = 0;
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    const auto s = static_cast<Situation>(i);
    check += m.situation_probability(s);
    t.add_row({to_string(s), Table::percent(m.situation_probability(s)),
               fmt_ms(m.situation_mean_time(s))});
  }
  t.print();
  std::printf("\nprobabilities sum to %.4f over %llu queries\n", check,
              static_cast<unsigned long long>(queries));
  std::printf(
      "paper's design goal: raise P(S1..S5) (cache-served) and keep the\n"
      "HDD-touching situations (S6..S9) rare; T1 << T2 << T6..T9.\n");
  return 0;
}
