// Fig. 14 — hit ratio comparison. Hit ratio is data-request coverage:
// every query implies one result request plus one per term; a result
// hit covers them all, a cache-served list covers itself. This uniform
// metric makes RC-only / IC-only / RIC columns comparable.
//  (a) RC vs IC vs RIC over cache capacity (result-only, list-only, and
//      combined 20/80 memory caches);
//  (b) LRU vs CBLRU vs CBSLRU on the full two-level hierarchy under
//      capacity pressure (paper: CBLRU +9.05 pp, CBSLRU +13.31 pp
//      average over LRU).
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

double run_1lc(bool results, bool lists, Bytes budget,
               std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCblru);
  cfg.cache.l2 = false;
  cfg.cache.result_cache = results;
  cfg.cache.list_cache = lists;
  if (results && lists) {
    cfg.set_memory_budget(budget);  // 20/80 split
    cfg.cache.l2 = false;
  } else if (results) {
    cfg.cache.mem_result_capacity = budget;
  } else {
    cfg.cache.mem_list_capacity = budget;
  }
  cfg.training_queries = 0;
  SearchSystem system(cfg);
  system.run(queries);
  return system.metrics().request_coverage();
}

double run_2lc(CachePolicy policy, Bytes budget, std::uint64_t queries,
               bool emit_report = false) {
  SystemConfig cfg = paper_system(policy, 5'000'000, budget);
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  if (emit_report) maybe_write_report(system, "fig14_2lc_cbslru");
  return system.metrics().request_coverage();
}

}  // namespace

int main() {
  print_environment("Fig. 14 — hit ratio comparison");
  const auto queries = default_queries(40'000);

  std::printf("--- (a) RC vs IC vs RIC, one-level cache, 5M docs ---\n");
  Table a({"cache size (MiB)", "RC", "IC", "RIC"});
  for (Bytes mb = 20; mb <= 200; mb += 20) {
    const Bytes budget = mb * MiB;
    a.add_row({Table::integer(static_cast<long long>(mb)),
               Table::percent(run_1lc(true, false, budget, queries)),
               Table::percent(run_1lc(false, true, budget, queries)),
               Table::percent(run_1lc(true, true, budget, queries))});
    std::printf("  ... %llu MiB done\n",
                static_cast<unsigned long long>(mb));
  }
  a.print();

  std::printf(
      "\n--- (b) LRU vs CBLRU vs CBSLRU, two-level cache (SSD = 10x/100x "
      "memory) ---\n");
  Table b({"mem budget (MiB)", "LRU", "CBLRU", "CBSLRU"});
  double sum_lru = 0, sum_cb = 0, sum_cbs = 0;
  int cells = 0;
  for (Bytes mb : {2, 4, 6, 8, 10, 12, 16, 20}) {
    const double lru = run_2lc(CachePolicy::kLru, mb * MiB, queries);
    const double cb = run_2lc(CachePolicy::kCblru, mb * MiB, queries);
    // Report the paper's headline cell (10 MiB memory budget).
    const double cbs =
        run_2lc(CachePolicy::kCbslru, mb * MiB, queries, mb == 10);
    sum_lru += lru;
    sum_cb += cb;
    sum_cbs += cbs;
    ++cells;
    b.add_row({Table::integer(static_cast<long long>(mb)),
               Table::percent(lru), Table::percent(cb),
               Table::percent(cbs)});
    std::printf("  ... %llu MiB done\n",
                static_cast<unsigned long long>(mb));
  }
  b.print();
  std::printf(
      "\naverage hit ratio: LRU %.2f%%, CBLRU %.2f%% (%+.2f pp), "
      "CBSLRU %.2f%% (%+.2f pp)\n",
      100 * sum_lru / cells, 100 * sum_cb / cells,
      100 * (sum_cb - sum_lru) / cells, 100 * sum_cbs / cells,
      100 * (sum_cbs - sum_lru) / cells);
  std::printf("paper: CBLRU +9.05 pp, CBSLRU +13.31 pp over LRU.\n");
  return 0;
}
