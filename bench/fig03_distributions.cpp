// Fig. 3 — (a) inverted-list utilization-rate distribution and (b) term
// access-frequency distribution, for a 5M-document index under an
// AOL-like query log.
#include "bench/bench_common.hpp"
#include "src/workload/log_analysis.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment(
      "Fig. 3 — inverted-list utilization & term access frequency");

  SystemConfig cfg = paper_system(CachePolicy::kCblru);
  AnalyticIndex index(cfg.corpus);

  std::printf("--- (a) utilization rate vs ranked terms ---\n");
  Table a({"term_rank", "list_bytes", "utilization_%"});
  for (std::uint32_t rank = 0; rank < 3'000;
       rank += rank < 100 ? 10 : 100) {
    const TermMeta m = index.term_meta(TermId{rank});
    a.add_row({Table::integer(rank),
               Table::integer(static_cast<long long>(m.list_bytes)),
               Table::num(m.utilization * 100, 1)});
  }
  a.print();

  std::printf(
      "\n--- (b) term access frequency vs ranked terms (100k-query "
      "sample) ---\n");
  const auto analysis =
      analyze_log(cfg.log, index, default_queries(100'000), 128 * KiB);
  const auto sorted = analysis.term_freq.sorted();
  Table b({"freq_rank", "term_id", "access_freq", "list_bytes"});
  for (std::size_t rank = 0; rank < std::min<std::size_t>(sorted.size(), 1000);
       rank += rank < 20 ? 1 : 50) {
    const auto term = static_cast<TermId>(sorted[rank].first);
    b.add_row({Table::integer(static_cast<long long>(rank)),
               Table::integer(term.raw()),
               Table::integer(static_cast<long long>(sorted[rank].second)),
               Table::integer(
                   static_cast<long long>(index.term_meta(term).list_bytes))});
  }
  b.print();

  std::printf(
      "\npaper: only part of each list is used during processing, and\n"
      "only a small head of the vocabulary is accessed frequently\n"
      "(Zipf-like, SS III).\n");
  return 0;
}
