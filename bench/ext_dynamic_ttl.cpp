// Extension bench (paper §IV.B): the dynamic scenario. Cached data
// carries a TTL; expired entries are re-read from the index store.
// Sweeps the TTL to show the freshness/performance trade-off, plus the
// paper's lifetime concern via SSD wear accounting.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Extension — dynamic scenario (TTL) and SSD wear");
  const auto queries = default_queries(25'000);

  Table t({"TTL (queries)", "hit ratio", "resp (ms)", "expired R", "expired I",
           "block erases", "mean wear (ppm of 100k cycles)"});
  for (std::uint64_t ttl : {std::uint64_t{0}, std::uint64_t{20'000},
                            std::uint64_t{5'000}, std::uint64_t{1'000},
                            std::uint64_t{200}}) {
    SystemConfig cfg = paper_system(CachePolicy::kCblru, 2'000'000, 6 * MiB);
    cfg.cache.ttl_queries = ttl;
    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    const auto& cs = system.cache_manager().stats();
    const Ssd* ssd = system.cache_ssd();
    t.add_row({ttl == 0 ? "inf (static)" : Table::integer(static_cast<long long>(ttl)),
               Table::percent(cs.hit_ratio()),
               fmt_ms(system.metrics().mean_response()),
               Table::integer(static_cast<long long>(cs.results_expired)),
               Table::integer(static_cast<long long>(cs.lists_expired)),
               Table::integer(static_cast<long long>(ssd->block_erases())),
               Table::num(ssd->wear_fraction() * 1e6, 2)});
    std::printf("  ... TTL=%llu done\n",
                static_cast<unsigned long long>(ttl));
  }
  t.print();
  std::printf(
      "\nexpected: shorter TTLs trade hit ratio (and response time) for\n"
      "freshness; expiry churn raises index-store traffic. TTL=inf is the\n"
      "paper's static evaluation setting.\n");
  return 0;
}
