// Fig. 15 — the search test without any cache: average response time and
// throughput vs collection size, with the index stored on HDD vs SSD.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct Cell {
  Micros response;
  double qps;
};

Cell run(std::uint64_t docs, bool on_ssd, std::uint64_t queries) {
  SystemConfig cfg = paper_system(CachePolicy::kCblru, docs);
  cfg.use_cache = false;
  cfg.index_on_ssd = on_ssd;
  cfg.training_queries = 0;
  SearchSystem system(cfg);
  system.run(queries);
  return {system.metrics().mean_response(), system.throughput_qps()};
}

}  // namespace

int main() {
  print_environment("Fig. 15 — search test without cache");
  const auto queries = default_queries(5'000);

  Table t({"docs (10^6)", "HDD resp (ms)", "SSD resp (ms)",
           "HDD thpt (q/s)", "SSD thpt (q/s)"});
  for (std::uint64_t docs = 1; docs <= 5; ++docs) {
    const Cell hdd = run(docs * 1'000'000, false, queries);
    const Cell ssd = run(docs * 1'000'000, true, queries);
    t.add_row({Table::integer(static_cast<long long>(docs)),
               fmt_ms(hdd.response), fmt_ms(ssd.response),
               Table::num(hdd.qps, 2), Table::num(ssd.qps, 2)});
    std::printf("  ... %llu M docs done\n",
                static_cast<unsigned long long>(docs));
  }
  t.print();
  std::printf(
      "\npaper: response rises / throughput falls sharply with collection\n"
      "size; raw SSD index beats HDD but 'the improvement is not obvious\n"
      "as expected' without caching.\n");
  return 0;
}
