// Extension bench: read/write mixes over the live index (src/ingest,
// DESIGN.md §12) — territory the paper never measured, since its
// engine serves a frozen index.
//
// Cells, all over the same materialized corpus and query stream:
//   disabled      ingest subsystem compiled out of the config — the
//                 frozen-index baseline;
//   enabled_idle  subsystem on, zero mutations. Gate 1: the output
//                 fingerprint must equal `disabled` bit-for-bit (the
//                 zero-churn invariant: liveness costs nothing until
//                 used);
//   churn_64      one ingest per 64 queries, every 4th ingest paired
//                 with a random delete;
//   churn_8       heavy churn, one ingest per 8 queries — several
//                 segment merges mid-run.
// After the heavy cell: probe a fixed query set against a cache-less
// oracle system over the rebuilt document set, both mid-segment and
// after a forced merge. Gate 2: results bit-identical at both points
// (cache coherence + overlay scoring are exact, not approximate).
// Gate 3 (PR 7): block-max DAAT over the same churned index — where
// ingests and deletes have invalidated the stored per-block maxima —
// must stay bit-identical to the exhaustive processor, mid-segment and
// post-merge (dirty terms bypass stale block-max; DESIGN.md §13).
//
// SSDSE_QUERIES scales the run; SSDSE_BENCH_OUT emits the JSON
// artifact (validated by scripts/check_bench_json.py); the heavy cell
// writes a telemetry run report when SSDSE_TELEMETRY_OUT is set.
#include <bit>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/engine/daat.hpp"
#include "src/ingest/live_index.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

CorpusConfig bench_corpus() {
  CorpusConfig cc;
  cc.num_docs = 20'000;
  cc.vocab_size = 3'000;
  cc.terms_per_doc = 30;
  cc.seed = 2012;
  return cc;
}

SystemConfig bench_system(const CorpusConfig& cc, bool live) {
  SystemConfig cfg;
  cfg.corpus = cc;
  cfg.log.vocab_size = cc.vocab_size;
  cfg.log.distinct_queries = 20'000;
  cfg.set_memory_budget(4 * MiB);
  cfg.cache.ssd_result_capacity = 8 * MiB;
  cfg.cache.ssd_list_capacity = 32 * MiB;
  cfg.training_queries = 2'000;
  cfg.ingest.enabled = live;
  // Low merge trigger so churn cells exercise several segment merges
  // mid-run (the default 64k-posting threshold would never fire here).
  cfg.ingest.merge_segment_postings = 2'048;
  return cfg;
}

ingest::DocBag make_bag(Rng& rng, std::uint32_t vocab) {
  ingest::DocBag bag;
  while (bag.size() < 12) {
    const auto t = static_cast<TermId>(rng.next_below(vocab));
    bool dup = false;
    for (const auto& [bt, tf] : bag) dup |= bt == t;
    if (!dup) {
      bag.emplace_back(t,
                       1 + static_cast<std::uint32_t>(rng.next_below(5)));
    }
  }
  std::sort(bag.begin(), bag.end());
  return bag;
}

std::uint64_t fold_result(std::uint64_t checksum, const ResultEntry& r) {
  for (const ScoredDoc& d : r.docs) {
    checksum = checksum * 1099511628211ull + d.doc.raw() +
               std::bit_cast<std::uint32_t>(d.score);
  }
  return checksum;
}

struct CellResult {
  std::string name;
  std::uint64_t fingerprint = 0;
  double mean_response_ms = 0;
  double hit_ratio = 0;
  std::uint64_t result_probes = 0;
  // Coherence accounting (all zero for the frozen cells).
  std::uint64_t stale_result_invalidations = 0;
  std::uint64_t stale_list_invalidations = 0;
  std::uint64_t stale_ssd_result_misses = 0;
  std::uint64_t stale_ssd_list_misses = 0;
  std::uint64_t stale_marks = 0;
  // Ingest accounting.
  std::uint64_t docs = 0;
  std::uint64_t deletes = 0;
  std::uint64_t merges = 0;
  std::uint64_t merged_postings = 0;
  std::uint64_t segment_postings = 0;
  std::uint64_t deleted_docs = 0;
};

/// One churn episode: `ingest_every == 0` means a pure read workload.
/// When `keep` is non-null the churned system and its document mirror
/// are handed back for the oracle probes.
struct ChurnedState {
  std::unique_ptr<MaterializedCorpus> corpus;
  std::unique_ptr<MaterializedIndex> index;
  std::unique_ptr<SearchSystem> sys;
  std::vector<ingest::DocBag> mirror;
};

CellResult run_cell(const char* name, std::uint64_t queries,
                    std::uint64_t ingest_every, bool live,
                    ChurnedState* keep) {
  const CorpusConfig cc = bench_corpus();
  Rng corpus_rng(cc.seed);
  auto corpus = std::make_unique<MaterializedCorpus>(cc, corpus_rng);
  auto index = std::make_unique<MaterializedIndex>(*corpus);
  const SystemConfig cfg = bench_system(cc, live);
  auto sys = live ? std::make_unique<SearchSystem>(cfg, *index, *corpus)
                  : std::make_unique<SearchSystem>(cfg, *index);

  std::vector<ingest::DocBag> mirror;
  if (keep != nullptr) {
    mirror.reserve(corpus->num_docs());
    for (DocId d{}; d.raw() < corpus->num_docs(); ++d) {
      mirror.push_back(corpus->doc(d));
    }
  }

  Rng churn_rng(4242);
  std::uint64_t ingests = 0;
  Micros sum = micros(0);
  CellResult cell;
  cell.name = name;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto out = sys->execute(sys->generator().next());
    sum += out.response;
    cell.fingerprint = fold_result(cell.fingerprint, out.result);
    if (ingest_every != 0 && i % ingest_every == ingest_every - 1) {
      const ingest::DocBag bag = make_bag(churn_rng, cc.vocab_size);
      (void)sys->ingest_document(bag);
      if (keep != nullptr) mirror.push_back(bag);
      if (++ingests % 4 == 0) {
        const auto victim =
            static_cast<DocId>(churn_rng.next_below(index->num_docs()));
        if (sys->delete_document(victim) && keep != nullptr) {
          mirror[victim.raw()].clear();  // slot stays — empty bag
        }
      }
    }
  }

  const CacheManagerStats& st = sys->cache_manager().stats();
  const auto hits = st.result_hits_mem + st.result_hits_ssd +
                    st.list_hits_mem + st.list_hits_ssd;
  const auto lookups = st.result_lookups + st.list_lookups;
  cell.mean_response_ms =
      queries ? sum / static_cast<double>(queries) / kMillisecond : 0.0;
  cell.hit_ratio =
      lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
              : 0.0;
  cell.result_probes = st.result_lookups;
  cell.stale_result_invalidations = st.stale_result_invalidations;
  cell.stale_list_invalidations = st.stale_list_invalidations;
  cell.stale_ssd_result_misses = st.stale_ssd_result_misses;
  cell.stale_ssd_list_misses = st.stale_ssd_list_misses;
  if (const SsdListCache* lc = sys->cache_manager().ssd_lists()) {
    cell.stale_marks = lc->stats().stale_marks;
  }
  if (live) {
    const IngestStats& is = sys->ingest_stats();
    cell.docs = is.docs;
    cell.deletes = is.deletes;
    cell.merges = is.merges;
    cell.merged_postings = is.merged_postings;
    if (const ingest::LiveIndex* li = sys->live_index()) {
      cell.segment_postings = li->segment().total_postings();
      cell.deleted_docs = li->deleted_docs();
    }
  }

  if (keep != nullptr) {
    keep->corpus = std::move(corpus);
    keep->index = std::move(index);
    keep->sys = std::move(sys);
    keep->mirror = std::move(mirror);
  }
  return cell;
}

/// Probe the churned system (caches and all) against a cache-less
/// system over the rebuilt document set: every result bit-identical.
bool oracle_probe(ChurnedState& churned, const MaterializedIndex& oracle,
                  std::uint64_t probes, const char* ctx) {
  SystemConfig ocfg = bench_system(bench_corpus(), /*live=*/false);
  ocfg.use_cache = false;
  SearchSystem truth(ocfg, const_cast<MaterializedIndex&>(oracle));
  for (std::uint64_t r = 0; r < probes; ++r) {
    const Query q = churned.sys->generator().query_for_rank(r);
    const auto got = churned.sys->execute(q);
    const auto want = truth.execute(truth.generator().query_for_rank(r));
    if (got.result.docs.size() != want.result.docs.size()) {
      std::fprintf(stderr, "%s: probe %llu size mismatch\n", ctx,
                   static_cast<unsigned long long>(r));
      return false;
    }
    for (std::size_t i = 0; i < got.result.docs.size(); ++i) {
      if (got.result.docs[i].doc != want.result.docs[i].doc ||
          std::bit_cast<std::uint32_t>(got.result.docs[i].score) !=
              std::bit_cast<std::uint32_t>(want.result.docs[i].score)) {
        std::fprintf(stderr, "%s: probe %llu rank %zu diverges\n", ctx,
                     static_cast<unsigned long long>(r), i);
        return false;
      }
    }
  }
  return true;
}

/// Gate 3: pruned vs exhaustive DAAT directly over the churned index
/// (pure reads — the system's caches and RNG stream are untouched).
/// Churn has gone stale on every touched term's stored block maxima;
/// the pruned path must bypass them and match bit-for-bit.
bool pruned_probe(const ChurnedState& churned, std::uint64_t probes,
                  const char* ctx) {
  DaatProcessor oracle(kTopK);
  MaxScoreDaatProcessor pruned(kTopK);
  for (std::uint64_t r = 0; r < probes; ++r) {
    const Query q = churned.sys->generator().query_for_rank(r);
    const ResultEntry want = oracle.intersect(*churned.index, q);
    const ResultEntry got = pruned.intersect(*churned.index, q);
    if (got.docs.size() != want.docs.size()) {
      std::fprintf(stderr, "%s: probe %llu size mismatch\n", ctx,
                   static_cast<unsigned long long>(r));
      return false;
    }
    for (std::size_t i = 0; i < got.docs.size(); ++i) {
      if (got.docs[i].doc != want.docs[i].doc ||
          std::bit_cast<std::uint32_t>(got.docs[i].score) !=
              std::bit_cast<std::uint32_t>(want.docs[i].score)) {
        std::fprintf(stderr, "%s: probe %llu rank %zu diverges\n", ctx,
                     static_cast<unsigned long long>(r), i);
        return false;
      }
    }
  }
  return true;
}

void write_json(const char* path, std::uint64_t queries,
                const std::vector<CellResult>& cells,
                bool idle_matches_disabled, std::uint64_t oracle_probes,
                bool oracle_pre_merge, bool oracle_post_merge,
                bool pruned_pre_merge, bool pruned_post_merge) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ext_ingest\",\n  \"schema_version\": 1,\n"
               "  \"queries\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(queries));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"fingerprint\": %llu, "
        "\"mean_response_ms\": %.4f, \"hit_ratio\": %.6f, "
        "\"result_probes\": %llu,\n"
        "     \"stale\": {\"result_invalidations\": %llu, "
        "\"list_invalidations\": %llu, \"ssd_result_misses\": %llu, "
        "\"ssd_list_misses\": %llu, \"ssd_list_marks\": %llu},\n"
        "     \"ingest\": {\"docs\": %llu, \"deletes\": %llu, "
        "\"merges\": %llu, \"merged_postings\": %llu, "
        "\"segment_postings\": %llu, \"deleted_docs\": %llu}}%s\n",
        c.name.c_str(), static_cast<unsigned long long>(c.fingerprint),
        c.mean_response_ms, c.hit_ratio,
        static_cast<unsigned long long>(c.result_probes),
        static_cast<unsigned long long>(c.stale_result_invalidations),
        static_cast<unsigned long long>(c.stale_list_invalidations),
        static_cast<unsigned long long>(c.stale_ssd_result_misses),
        static_cast<unsigned long long>(c.stale_ssd_list_misses),
        static_cast<unsigned long long>(c.stale_marks),
        static_cast<unsigned long long>(c.docs),
        static_cast<unsigned long long>(c.deletes),
        static_cast<unsigned long long>(c.merges),
        static_cast<unsigned long long>(c.merged_postings),
        static_cast<unsigned long long>(c.segment_postings),
        static_cast<unsigned long long>(c.deleted_docs),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"idle_matches_disabled\": %s,\n"
               "  \"oracle\": {\"probes\": %llu, \"pre_merge_match\": %s, "
               "\"post_merge_match\": %s, \"pruned_pre_merge_match\": %s, "
               "\"pruned_post_merge_match\": %s}\n}\n",
               idle_matches_disabled ? "true" : "false",
               static_cast<unsigned long long>(oracle_probes),
               oracle_pre_merge ? "true" : "false",
               oracle_post_merge ? "true" : "false",
               pruned_pre_merge ? "true" : "false",
               pruned_post_merge ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  print_environment("Extension — live-index churn (read/write mixes)");
  const std::uint64_t queries = default_queries(20'000);
  const std::uint64_t probes = 200;
  std::printf("%llu queries per cell, %llu oracle probes\n\n",
              static_cast<unsigned long long>(queries),
              static_cast<unsigned long long>(probes));

  std::vector<CellResult> cells;
  cells.push_back(
      run_cell("disabled", queries, 0, /*live=*/false, nullptr));
  cells.push_back(
      run_cell("enabled_idle", queries, 0, /*live=*/true, nullptr));
  cells.push_back(run_cell("churn_64", queries, 64, /*live=*/true, nullptr));
  ChurnedState heavy;
  cells.push_back(run_cell("churn_8", queries, 8, /*live=*/true, &heavy));

  // Gate 1: the zero-churn invariant. An idle live system draws the
  // same RNG stream and produces the same bits as no subsystem at all.
  const bool idle_ok = cells[0].fingerprint == cells[1].fingerprint;

  // Gate 2: oracle equivalence of the heavy cell, mid-segment and
  // after a forced merge (the merge must be content-transparent).
  const CorpusConfig cc = bench_corpus();
  MaterializedCorpus oracle_corpus(cc, heavy.mirror);
  MaterializedIndex oracle_index(oracle_corpus);
  const bool pre_ok =
      oracle_probe(heavy, oracle_index, probes, "pre-merge");
  const bool pruned_pre_ok =
      pruned_probe(heavy, probes, "pruned pre-merge");
  heavy.sys->merge_now();
  const bool post_ok =
      oracle_probe(heavy, oracle_index, probes, "post-merge");
  const bool pruned_post_ok =
      pruned_probe(heavy, probes, "pruned post-merge");
  maybe_write_report(*heavy.sys, "ext_ingest");

  Table t({"cell", "fingerprint", "mean (ms)", "HR", "docs", "dels",
           "merges", "stale res", "stale list", "ssd marks"});
  for (const CellResult& c : cells) {
    t.add_row({c.name, std::to_string(c.fingerprint),
               Table::num(c.mean_response_ms, 3),
               Table::percent(c.hit_ratio), std::to_string(c.docs),
               std::to_string(c.deletes), std::to_string(c.merges),
               std::to_string(c.stale_result_invalidations),
               std::to_string(c.stale_list_invalidations),
               std::to_string(c.stale_marks)});
  }
  t.print();
  std::printf(
      "\nzero-churn fingerprint: %s; oracle equivalence: pre-merge %s, "
      "post-merge %s; block-max vs exhaustive: pre-merge %s, "
      "post-merge %s\n",
      idle_ok ? "identical" : "DIVERGED", pre_ok ? "exact" : "DIVERGED",
      post_ok ? "exact" : "DIVERGED",
      pruned_pre_ok ? "exact" : "DIVERGED",
      pruned_post_ok ? "exact" : "DIVERGED");

  if (const char* out = std::getenv("SSDSE_BENCH_OUT")) {
    write_json(out, queries, cells, idle_ok, probes, pre_ok, post_ok,
               pruned_pre_ok, pruned_post_ok);
  }
  return idle_ok && pre_ok && post_ok && pruned_pre_ok && pruned_post_ok
             ? 0
             : 1;
}
