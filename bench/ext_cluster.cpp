// Extension bench: sharded scale-out — the paper's "large-scale" setting
// made explicit. A fixed 4M-document collection is document-partitioned
// over 1..8 index servers (each with its own two-level CBSLRU cache);
// the broker broadcasts queries and merges top-K.
#include "bench/bench_common.hpp"
#include "src/hybrid/cluster.hpp"

using namespace ssdse;
using namespace ssdse::bench;

int main() {
  print_environment("Extension — document-partitioned cluster scaling");
  const auto queries = default_queries(10'000);

  Table t({"shards", "docs/shard (10^6)", "mean resp (ms)", "p99 (ms)",
           "cluster thpt (q/s)", "shard-0 hit ratio"});
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ClusterConfig cfg;
    cfg.num_shards = shards;
    cfg.total_docs = 4'000'000;
    cfg.shard_template = paper_system(CachePolicy::kCbslru, 1, 8 * MiB);
    cfg.shard_template.training_queries = 5'000;
    SearchCluster cluster(cfg);
    cluster.run(queries);
    t.add_row({Table::integer(shards),
               Table::num(4.0 / shards, 2),
               fmt_ms(cluster.metrics().mean_response()),
               Table::num(cluster.metrics().histogram().quantile(0.99) /
                              kMillisecond.value(), 2),
               Table::num(cluster.throughput_qps(), 1),
               Table::percent(
                   cluster.shard(0).cache_manager().stats().hit_ratio())});
    std::printf("  ... %u shards done\n", shards);
  }
  t.print();
  std::printf(
      "\nexpected: smaller shards answer faster (shorter lists, better\n"
      "cache coverage), but broadcast means fleet throughput tracks the\n"
      "slowest shard — the classic partition-vs-replicate trade-off.\n");
  return 0;
}
