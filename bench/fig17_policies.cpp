// Fig. 17 — LRU vs CBLRU vs CBSLRU on the full two-level hierarchy:
// average response time and throughput vs collection size.
// Paper: CBLRU -35.27 % / CBSLRU -41.05 % response time,
//        CBLRU +55.29 % / CBSLRU +70.47 % throughput, vs LRU.
#include "bench/bench_common.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

struct Cell {
  Micros response;
  double qps;
};

Cell run(CachePolicy policy, std::uint64_t docs, std::uint64_t queries,
         bool emit_report = false) {
  SystemConfig cfg = paper_system(policy, docs);
  SearchSystem system(cfg);
  system.run(queries);
  system.drain();
  if (emit_report) maybe_write_report(system, "fig17_2lc_cbslru_5m");
  return {system.metrics().mean_response(), system.throughput_qps()};
}

}  // namespace

int main() {
  print_environment("Fig. 17 — LRU vs CBLRU vs CBSLRU (2LC)");
  const auto queries = default_queries(30'000);

  Table rt({"docs (10^6)", "LRU (ms)", "CBLRU (ms)", "CBSLRU (ms)"});
  Table tp({"docs (10^6)", "LRU (q/s)", "CBLRU (q/s)", "CBSLRU (q/s)"});
  double resp[3] = {0, 0, 0}, thpt[3] = {0, 0, 0};
  int cells = 0;
  for (std::uint64_t docs = 1; docs <= 5; ++docs) {
    const Cell lru = run(CachePolicy::kLru, docs * 1'000'000, queries);
    const Cell cb = run(CachePolicy::kCblru, docs * 1'000'000, queries);
    // Report the largest CBSLRU cell (the paper's 5M-doc column).
    const Cell cbs =
        run(CachePolicy::kCbslru, docs * 1'000'000, queries, docs == 5);
    rt.add_row({Table::integer(static_cast<long long>(docs)),
                fmt_ms(lru.response), fmt_ms(cb.response),
                fmt_ms(cbs.response)});
    tp.add_row({Table::integer(static_cast<long long>(docs)),
                Table::num(lru.qps, 1), Table::num(cb.qps, 1),
                Table::num(cbs.qps, 1)});
    resp[0] += lru.response.value();
    resp[1] += cb.response.value();
    resp[2] += cbs.response.value();
    thpt[0] += lru.qps;
    thpt[1] += cb.qps;
    thpt[2] += cbs.qps;
    ++cells;
    std::printf("  ... %llu M docs done\n",
                static_cast<unsigned long long>(docs));
  }
  std::printf("\n--- (a) average response time ---\n");
  rt.print();
  std::printf("\n--- (b) throughput ---\n");
  tp.print();
  std::printf(
      "\nvs LRU averages: CBLRU response %+.2f%% (paper -35.27%%), "
      "throughput %+.2f%% (paper +55.29%%)\n"
      "                 CBSLRU response %+.2f%% (paper -41.05%%), "
      "throughput %+.2f%% (paper +70.47%%)\n",
      (resp[1] / resp[0] - 1) * 100, (thpt[1] / thpt[0] - 1) * 100,
      (resp[2] / resp[0] - 1) * 100, (thpt[2] / thpt[0] - 1) * 100);
  return 0;
}
