// Fig. 1 — the I/O trace of search engines: (a) a UMass-style web-search
// trace, (b) a Lucene-style retrieval trace, plus the same picture
// captured live from this engine's HDD. Prints sampled (read sequence,
// logical sector) series and the §III characteristics for each.
#include "bench/bench_common.hpp"
#include "src/trace/analyzer.hpp"
#include "src/trace/synth.hpp"

using namespace ssdse;
using namespace ssdse::bench;

namespace {

void print_series(const char* name, std::span<const IoRecord> trace,
                  std::size_t points) {
  std::printf("--- %s: LBA vs read sequence (sampled %zu of %zu) ---\n",
              name, points, trace.size());
  Table t({"read_seq", "logical_sector"});
  const std::size_t stride = std::max<std::size_t>(trace.size() / points, 1);
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    t.add_row({Table::integer(static_cast<long long>(i)),
               Table::integer(static_cast<long long>(trace[i].lba))});
  }
  t.print();
  std::printf("\n");
}

void print_characteristics(const char* name,
                           const TraceCharacteristics& c) {
  std::printf(
      "%-28s ops=%llu reads=%.2f%% sequential=%.2f%% skipped=%.2f%% "
      "random=%.2f%% locality90=%.2f%%\n",
      name, static_cast<unsigned long long>(c.total_ops),
      c.read_fraction * 100, c.sequential_fraction * 100,
      c.skipped_fraction * 100, c.random_fraction * 100,
      c.locality_90 * 100);
}

}  // namespace

int main() {
  print_environment("Fig. 1 — I/O traces of search engines");
  Rng rng(2012);

  WebSearchTraceConfig web_cfg;
  LuceneTraceConfig lucene_cfg;
  const auto web = synthesize_web_search_trace(web_cfg, rng);
  const auto lucene = synthesize_lucene_trace(lucene_cfg, rng);

  // Live trace from a retrieval run of this engine (DiskMon equivalent).
  SystemConfig cfg = paper_system(CachePolicy::kCblru, 1'000'000, 8 * MiB);
  SearchSystem system(cfg);
  system.hdd().collector().set_enabled(true);
  system.hdd().collector().set_capacity(5'000);
  system.run(default_queries(3'000));
  const auto live = system.hdd().collector().records();

  print_series("Fig. 1(a) web search (UMass-like)", web, 40);
  print_series("Fig. 1(b) Lucene search (self-built)", lucene, 40);
  print_series("live trace from this engine", live, 40);

  std::printf("--- SS III characteristics ---\n");
  TraceAnalyzer analyzer;
  print_characteristics("web search (UMass-like)", analyzer.analyze(web));
  print_characteristics("Lucene search (synthetic)",
                        analyzer.analyze(lucene));
  print_characteristics("live engine trace", analyzer.analyze(live));
  std::printf(
      "\npaper: reads > 99%%, strong locality, random + skipped reads.\n");
  return 0;
}
