// Trace analysis: the DiskMon-style workflow of paper §III. Collects an
// I/O trace from a live retrieval run, synthesizes the two reference
// traces of Fig. 1, and prints the four characteristics (read-dominant,
// locality, random reads, skipped reads) side by side. Also demonstrates
// CSV round-tripping of traces.
//
//   $ ./build/examples/trace_analysis [num_queries]
#include <cstdio>
#include <cstdlib>

#include "src/hybrid/search_system.hpp"
#include "src/trace/analyzer.hpp"
#include "src/trace/synth.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/table.hpp"

using namespace ssdse;

namespace {

void add_row(Table& t, const char* name, const TraceCharacteristics& c) {
  t.add_row({name, Table::integer(static_cast<long long>(c.total_ops)),
             Table::percent(c.read_fraction),
             Table::percent(c.sequential_fraction),
             Table::percent(c.skipped_fraction),
             Table::percent(c.random_fraction),
             Table::percent(c.locality_90)});
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5'000;
  Rng rng(99);

  // Reference traces (the Fig. 1 substitutes).
  const auto web = synthesize_web_search_trace({}, rng);
  const auto lucene = synthesize_lucene_trace({}, rng);

  // A live trace: attach the collector to the index HDD and run queries.
  SystemConfig cfg;
  cfg.set_num_docs(1'000'000);
  cfg.set_memory_budget(16 * MiB);
  SearchSystem system(cfg);
  system.hdd().collector().set_enabled(true);
  system.run(queries);
  const auto live = system.hdd().collector().records();

  // Round-trip the live trace through the CSV format.
  const char* path = "/tmp/ssdse_live_trace.csv";
  write_trace_csv(path, live);
  const auto reloaded = read_trace_csv(path);
  std::printf("live trace: %zu records captured, %zu reloaded from %s\n\n",
              live.size(), reloaded.size(), path);

  TraceAnalyzer analyzer;
  Table t({"trace", "ops", "reads", "sequential", "skipped", "random",
           "locality(90% hits in)"});
  add_row(t, "web-search (UMass-like)", analyzer.analyze(web));
  add_row(t, "lucene retrieval (synthetic)", analyzer.analyze(lucene));
  add_row(t, "live retrieval (this engine)", analyzer.analyze(reloaded));
  t.print();

  std::printf(
      "\nExpected per paper SS III: reads > 99%%, strong locality (90%% of\n"
      "hits landing in a small fraction of the address space), few strictly\n"
      "sequential runs, and a visible population of skipped reads.\n");
  return 0;
}
