// Policy shootout: run the same query stream under LRU, CBLRU and
// CBSLRU and compare hit ratio, latency, throughput and flash wear —
// the paper's headline claims, reproduced on one shard.
//
//   $ ./build/examples/policy_shootout [num_queries]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/hybrid/search_system.hpp"
#include "src/util/table.hpp"

using namespace ssdse;

namespace {

struct Row {
  const char* name;
  double hit_ratio;
  Micros mean_response;
  double qps;
  std::uint64_t erases;
  Micros flash_access;
};

Row run_policy(CachePolicy policy, std::uint64_t queries) {
  SystemConfig cfg;
  cfg.set_num_docs(1'000'000);
  cfg.set_memory_budget(16 * MiB);
  cfg.cache.policy = policy;
  cfg.training_queries = 5'000;

  SearchSystem system(cfg);
  system.run(queries);
  system.drain();

  const Ssd* ssd = system.cache_ssd();
  return Row{to_string(policy),
             system.cache_manager().stats().hit_ratio(),
             system.metrics().mean_response(),
             system.throughput_qps(),
             ssd ? ssd->block_erases() : 0,
             ssd ? ssd->mean_flash_access() : Micros{}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30'000;

  std::vector<Row> rows;
  for (CachePolicy p :
       {CachePolicy::kLru, CachePolicy::kCblru, CachePolicy::kCbslru}) {
    std::printf("running %s...\n", to_string(p));
    rows.push_back(run_policy(p, queries));
  }

  Table t({"policy", "hit ratio", "mean resp (ms)", "throughput (q/s)",
           "block erases", "flash access (us)"});
  for (const Row& r : rows) {
    t.add_row({r.name, Table::percent(r.hit_ratio),
               Table::num(r.mean_response / kMillisecond, 2),
               Table::num(r.qps, 1),
               Table::integer(static_cast<long long>(r.erases)),
               Table::num(r.flash_access.value(), 2)});
  }
  std::printf("\n");
  t.print();

  const Row& lru = rows[0];
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf(
        "\n%s vs LRU: hit ratio %+.2f pp, response %+.1f%%, "
        "throughput %+.1f%%, erases %+.1f%%\n",
        r.name, (r.hit_ratio - lru.hit_ratio) * 100.0,
        (r.mean_response / lru.mean_response - 1.0) * 100.0,
        (r.qps / lru.qps - 1.0) * 100.0,
        lru.erases ? (static_cast<double>(r.erases) /
                          static_cast<double>(lru.erases) -
                      1.0) * 100.0
                   : 0.0);
  }
  return 0;
}
