// ssdse_sim — the experiment driver: configure a whole simulated
// deployment (corpus, cache policy and capacities, FTL scheme, codec,
// TTL, intersections, sharding) from a config file and/or --key=value
// flags, run a query stream, and print a full report.
//
//   $ ./build/examples/ssdse_sim --docs=2000000 --policy=cbslru
//         (plus e.g. --mem_budget=10MiB --queries=50000)
//   $ ./build/examples/ssdse_sim myrun.conf --shards=4
//
// Keys (defaults in parentheses):
//   docs (1000000)           collection size
//   mem_budget (16MiB)       memory cache budget (20/80 split, 10x/100x SSD)
//   policy (cblru)           lru | cblru | cbslru
//   queries (20000)          stream length
//   ftl (page)               page | block | hybrid-log | dftl | bplru+<s>
//   codec (raw)              raw | varint | group-varint
//   ttl (0)                  TTL in queries, 0 = static
//   intersections (0)        intersection cache bytes (three-level)
//   shards (1)               >1 = sharded cluster with a broker
//   index_on_ssd (false)     index files on SSD instead of HDD
//   use_cache (true)
//   wear_leveling (false)
//   training (10000)         log-analysis prefix (TEV / CBSLRU preload)
//   seed (7)                 query-stream seed
//   recovery_dir ("")        persist SSD cache metadata here; a re-run
//                            against the same dir warm-restarts
//   snapshot_every (0)       auto-checkpoint period in queries
#include <cstdio>
#include <stdexcept>

#include "src/hybrid/cluster.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/util/config.hpp"
#include "src/util/table.hpp"

using namespace ssdse;

namespace {

CachePolicy parse_policy(const std::string& name) {
  if (name == "lru") return CachePolicy::kLru;
  if (name == "cblru") return CachePolicy::kCblru;
  if (name == "cbslru") return CachePolicy::kCbslru;
  throw std::runtime_error("unknown policy: " + name);
}

SystemConfig system_config(const Config& cfg) {
  SystemConfig sys;
  sys.set_num_docs(static_cast<std::uint64_t>(cfg.get_int("docs", 1'000'000)));
  sys.set_memory_budget(cfg.get_bytes("mem_budget", 16 * MiB));
  sys.cache.policy = parse_policy(cfg.get_string("policy", "cblru"));
  sys.cache.ttl_queries =
      static_cast<std::uint64_t>(cfg.get_int("ttl", 0));
  sys.cache.intersection_capacity = cfg.get_bytes("intersections", 0);
  sys.cache_ssd.ftl_scheme = cfg.get_string("ftl", "page");
  sys.cache_ssd.ftl.wear_leveling = cfg.get_bool("wear_leveling", false);
  sys.corpus.codec = cfg.get_string("codec", "raw");
  sys.index_on_ssd = cfg.get_bool("index_on_ssd", false);
  sys.use_cache = cfg.get_bool("use_cache", true);
  sys.training_queries =
      static_cast<std::uint64_t>(cfg.get_int("training", 10'000));
  sys.log.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  sys.recovery.dir = cfg.get_string("recovery_dir", "");
  sys.recovery.enabled = !sys.recovery.dir.empty();
  sys.recovery.snapshot_every =
      static_cast<std::uint64_t>(cfg.get_int("snapshot_every", 0));
  return sys;
}

void report_system(SearchSystem& system) {
  const auto& m = system.metrics();
  const auto& cs = system.cache_manager().stats();
  if (const auto* rs = system.recovery_stats()) {
    std::printf("recovery: %s start (%llu result + %llu list entries "
                "recovered, %.2f ms",
                system.warm_started() ? "warm" : "cold",
                static_cast<unsigned long long>(rs->result_entries_recovered),
                static_cast<unsigned long long>(rs->list_entries_recovered),
                rs->recovery_wall_ms);
    if (rs->journal_torn_bytes > 0) {
      std::printf("; journal torn tail of %llu bytes truncated",
                  static_cast<unsigned long long>(rs->journal_torn_bytes));
    }
    std::printf(")\n\n");
  }
  Table t({"metric", "value"});
  t.add_row({"queries", Table::integer(static_cast<long long>(m.queries()))});
  t.add_row({"mean response (ms)",
             Table::num(m.mean_response() / kMillisecond, 3)});
  t.add_row({"p99 response (ms)",
             Table::num(m.histogram().quantile(0.99) / kMillisecond.value(), 3)});
  t.add_row({"throughput (q/s)", Table::num(system.throughput_qps(), 1)});
  t.add_row({"hit ratio", Table::percent(cs.hit_ratio())});
  t.add_row({"  result hits mem/ssd",
             Table::integer(static_cast<long long>(cs.result_hits_mem)) +
                 " / " +
                 Table::integer(static_cast<long long>(cs.result_hits_ssd))});
  t.add_row({"  list hits mem/ssd",
             Table::integer(static_cast<long long>(cs.list_hits_mem)) +
                 " / " +
                 Table::integer(static_cast<long long>(cs.list_hits_ssd))});
  t.add_row({"  index-store reads",
             Table::integer(static_cast<long long>(cs.hdd_list_reads))});
  t.add_row({"  expired (TTL)",
             Table::integer(static_cast<long long>(cs.results_expired +
                                                   cs.lists_expired))});
  if (const Ssd* ssd = system.cache_ssd()) {
    t.add_row({"SSD block erasures",
               Table::integer(static_cast<long long>(ssd->block_erases()))});
    t.add_row({"SSD mean access (us)",
               Table::num(ssd->mean_flash_access().value(), 2)});
    t.add_row({"SSD write amplification",
               Table::num(ssd->ftl().stats().write_amplification(
                   ssd->nand().stats()), 3)});
    t.add_row({"SSD wear (mean, % of 100k cycles)",
               Table::num(ssd->wear_fraction() * 100, 4)});
  }
  t.print();

  std::printf("\nsituation census (Table I):\n");
  Table s({"situation", "probability", "mean (ms)"});
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    const auto sit = static_cast<Situation>(i);
    s.add_row({to_string(sit), Table::percent(m.situation_probability(sit)),
               Table::num(m.situation_mean_time(sit) / kMillisecond, 3)});
  }
  s.print();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
    std::vector<std::string> files;
    const Config cli = Config::from_args(argc, argv, &files);
    for (const std::string& f : files) {
      Config file_cfg = Config::from_file(f);
      cfg.merge(file_cfg);
    }
    cfg.merge(cli);  // CLI wins over files
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }

  const auto queries =
      static_cast<std::uint64_t>(cfg.get_int("queries", 20'000));
  const auto shards = static_cast<std::uint32_t>(cfg.get_int("shards", 1));

  try {
    if (shards > 1) {
      ClusterConfig cluster_cfg;
      cluster_cfg.num_shards = shards;
      cluster_cfg.total_docs =
          static_cast<std::uint64_t>(cfg.get_int("docs", 1'000'000));
      cluster_cfg.shard_template = system_config(cfg);
      SearchCluster cluster(cluster_cfg);
      std::printf("running %llu queries over %u shards...\n",
                  static_cast<unsigned long long>(queries), shards);
      cluster.run(queries);
      std::printf("\ncluster: mean response %.3f ms, throughput %.1f q/s\n\n",
                  cluster.metrics().mean_response() / kMillisecond,
                  cluster.throughput_qps());
      std::printf("--- shard 0 detail ---\n");
      cluster.shard(0).drain();
      report_system(cluster.shard(0));
    } else {
      SearchSystem system(system_config(cfg));
      std::printf("running %llu queries...\n",
                  static_cast<unsigned long long>(queries));
      system.run(queries);
      system.drain();
      system.checkpoint();  // clean-shutdown snapshot (no-op if disabled)
      report_system(system);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simulation error: %s\n", e.what());
    return 1;
  }
  return 0;
}
