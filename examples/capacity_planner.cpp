// Capacity planner: the paper's cost argument (§VII.C / Fig. 18) as a
// tool. For a fixed query stream it sweeps memory-only against
// memory+SSD configurations and reports $ cost, mean response, and the
// cost-performance product, so an operator can pick a deployment point.
//
//   $ ./build/examples/capacity_planner [num_queries]
#include <cstdio>
#include <cstdlib>

#include "src/hybrid/cost_model.hpp"
#include "src/hybrid/search_system.hpp"
#include "src/util/table.hpp"

using namespace ssdse;

namespace {

struct Plan {
  const char* name;
  Bytes mem_budget;
  bool use_ssd_tier;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  const Plan plans[] = {
      {"1LC small DRAM (8 MiB)", 8 * MiB, false},
      {"1LC big DRAM (64 MiB)", 64 * MiB, false},
      {"2LC small DRAM + SSD", 8 * MiB, true},
      {"2LC tiny DRAM + SSD", 4 * MiB, true},
  };

  CostModel cost;
  Table t({"plan", "DRAM", "SSD cache", "cost ($)", "mean resp (ms)",
           "$ x ms (lower=better)"});

  for (const Plan& p : plans) {
    SystemConfig cfg;
    cfg.set_num_docs(1'000'000);
    cfg.set_memory_budget(p.mem_budget);
    cfg.cache.policy = CachePolicy::kCbslru;
    cfg.cache.l2 = p.use_ssd_tier;
    cfg.training_queries = 5'000;

    SearchSystem system(cfg);
    system.run(queries);
    system.drain();

    const Bytes ssd_bytes =
        p.use_ssd_tier
            ? cfg.cache.ssd_result_capacity + cfg.cache.ssd_list_capacity
            : 0;
    const Micros resp = system.metrics().mean_response();
    const double dollars = cost.dollars(p.mem_budget, ssd_bytes, 0);
    t.add_row({p.name,
               Table::num(static_cast<double>(p.mem_budget) / MiB, 0) + " MiB",
               Table::num(static_cast<double>(ssd_bytes) / MiB, 0) + " MiB",
               Table::num(dollars, 2),
               Table::num(resp / kMillisecond, 2),
               Table::num(cost.cost_performance(p.mem_budget, ssd_bytes, 0,
                                                resp), 2)});
    std::printf("finished: %s\n", p.name);
  }
  std::printf("\n");
  t.print();
  std::printf(
      "\nThe paper's claim: a small-DRAM + SSD 2LC beats big-DRAM 1LC on\n"
      "cost-performance because flash $/GB is ~7.6x cheaper than DRAM.\n");
  return 0;
}
