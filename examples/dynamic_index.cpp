// Dynamic-index example (paper §IV.B): a shard whose index is
// continuously refreshed, so cached entries carry a TTL. Shows the
// freshness / performance trade-off an operator tunes, and how the
// three-level intersection extension claws some of the cost back.
//
//   $ ./build/examples/dynamic_index [num_queries]
#include <cstdio>
#include <cstdlib>

#include "src/hybrid/search_system.hpp"
#include "src/util/table.hpp"

using namespace ssdse;

int main(int argc, char** argv) {
  const std::uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15'000;

  Table t({"configuration", "hit ratio", "mean resp (ms)", "expired entries",
           "HDD list reads"});
  struct Row {
    const char* name;
    std::uint64_t ttl;
    Bytes intersections;
  };
  const Row rows[] = {
      {"static index (TTL inf)", 0, 0},
      {"dynamic, TTL 5000 queries", 5'000, 0},
      {"dynamic, TTL 1000 queries", 1'000, 0},
      {"dynamic TTL 1000 + intersections", 1'000, 8 * MiB},
  };
  for (const Row& row : rows) {
    SystemConfig cfg;
    cfg.set_num_docs(1'000'000);
    cfg.set_memory_budget(12 * MiB);
    cfg.cache.policy = CachePolicy::kCblru;
    cfg.cache.ttl_queries = row.ttl;
    cfg.cache.intersection_capacity = row.intersections;
    cfg.training_queries = 3'000;

    SearchSystem system(cfg);
    system.run(queries);
    system.drain();
    const auto& cs = system.cache_manager().stats();
    t.add_row({row.name, Table::percent(cs.hit_ratio()),
               Table::num(system.metrics().mean_response() / kMillisecond, 2),
               Table::integer(static_cast<long long>(cs.results_expired +
                                                     cs.lists_expired)),
               Table::integer(static_cast<long long>(cs.hdd_list_reads))});
    std::printf("finished: %s\n", row.name);
  }
  std::printf("\n");
  t.print();
  std::printf(
      "\nTTL forces stale entries back to the index store (freshness vs\n"
      "performance); the intersection level offsets part of the cost by\n"
      "answering term pairs from memory.\n");
  return 0;
}
