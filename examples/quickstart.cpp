// Quickstart: stand up a simulated index server with the SSD-backed
// two-level cache (CBLRU), run a query stream against it, and print the
// headline metrics.
//
//   $ ./build/examples/quickstart [num_queries]
#include <cstdio>
#include <cstdlib>

#include "src/hybrid/search_system.hpp"
#include "src/util/table.hpp"

using namespace ssdse;

int main(int argc, char** argv) {
  const std::uint64_t num_queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  // 1. Describe the deployment: a 1M-document shard, a 20 MiB memory
  //    cache (20 % results / 80 % lists) and the paper's 10x/100x SSD
  //    tier, managed by CBLRU.
  SystemConfig cfg;
  cfg.set_num_docs(1'000'000);
  cfg.set_memory_budget(20 * MiB);
  cfg.cache.policy = CachePolicy::kCblru;
  cfg.training_queries = 5'000;

  // 2. Build the system: synthetic corpus -> inverted index -> HDD
  //    layout; NAND + page-mapping FTL -> cache SSD; query-log model.
  SearchSystem system(cfg);

  // 3. Run the stream.
  std::printf("running %llu queries against %llu docs (policy %s)...\n",
              static_cast<unsigned long long>(num_queries),
              static_cast<unsigned long long>(cfg.corpus.num_docs),
              to_string(cfg.cache.policy));
  system.run(num_queries);
  system.drain();

  // 4. Report.
  const auto& m = system.metrics();
  const auto& cs = system.cache_manager().stats();
  std::printf("\n");
  Table t({"metric", "value"});
  t.add_row({"queries", Table::integer(static_cast<long long>(m.queries()))});
  t.add_row({"mean response (ms)", Table::num(m.mean_response() / kMillisecond, 3)});
  t.add_row({"p99 response (ms)",
             Table::num(m.histogram().quantile(0.99) / kMillisecond.value(), 3)});
  t.add_row({"throughput (q/s)", Table::num(system.throughput_qps(), 1)});
  t.add_row({"hit ratio (combined)", Table::percent(cs.hit_ratio())});
  t.add_row({"  result: memory", Table::integer(static_cast<long long>(cs.result_hits_mem))});
  t.add_row({"  result: SSD", Table::integer(static_cast<long long>(cs.result_hits_ssd))});
  t.add_row({"  lists: memory", Table::integer(static_cast<long long>(cs.list_hits_mem))});
  t.add_row({"  lists: SSD", Table::integer(static_cast<long long>(cs.list_hits_ssd))});
  t.add_row({"  lists: HDD reads", Table::integer(static_cast<long long>(cs.hdd_list_reads))});
  if (const Ssd* ssd = system.cache_ssd()) {
    t.add_row({"SSD block erasures",
               Table::integer(static_cast<long long>(ssd->block_erases()))});
    t.add_row({"SSD mean access (us)", Table::num(ssd->mean_flash_access().value(), 2)});
    t.add_row({"SSD write amplification",
               Table::num(ssd->ftl().stats().write_amplification(
                   ssd->nand().stats()), 3)});
  }
  t.print();

  std::printf("\nTable I situation census:\n");
  Table s({"situation", "probability", "mean time (ms)"});
  for (std::size_t i = 0; i < kNumSituations; ++i) {
    const auto sit = static_cast<Situation>(i);
    s.add_row({to_string(sit), Table::percent(m.situation_probability(sit)),
               Table::num(m.situation_mean_time(sit) / kMillisecond, 3)});
  }
  s.print();
  return 0;
}
